#include "train/trainer.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>
#include <span>
#include <stdexcept>

#include "collectives/collectives.hpp"
#include "core/async_gtopk.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/telemetry.hpp"
#include "sparse/topk_merge.hpp"
#include "sparse/topk_select.hpp"
#include "train/bucketer.hpp"
#include "train/checkpoint.hpp"
#include "util/log.hpp"

namespace gtopk::train {

namespace {

using comm::Communicator;
using sparse::SparseGradient;

double now_host_s() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/// Scatter a sparse update scaled by 1/P into a dense vector.
std::vector<float> sparse_to_mean_dense(const SparseGradient& g, int world) {
    std::vector<float> dense(static_cast<std::size_t>(g.dense_size), 0.0f);
    const float inv = 1.0f / static_cast<float>(world);
    for (std::size_t i = 0; i < g.nnz(); ++i) {
        dense[static_cast<std::size_t>(g.indices[i])] = g.values[i] * inv;
    }
    return dense;
}

/// Line 10 of Algorithm 4: add back into `residual` every locally-selected
/// entry whose index did not survive the global selection.
void return_unselected(std::vector<float>& residual, const SparseGradient& local,
                       const SparseGradient& global) {
    std::size_t gi = 0;
    for (std::size_t li = 0; li < local.nnz(); ++li) {
        const std::int32_t idx = local.indices[li];
        while (gi < global.nnz() && global.indices[gi] < idx) ++gi;
        const bool selected = gi < global.nnz() && global.indices[gi] == idx;
        if (!selected) {
            residual[static_cast<std::size_t>(idx)] += local.values[li];
        }
    }
}

void check_error_feedback(const std::vector<float>& accumulated,
                          const std::vector<float>& residual,
                          const SparseGradient& sent) {
    // residual + sent must reconstruct the accumulated gradient exactly in
    // the pre-aggregation state (before the line-10 put-back).
    std::size_t si = 0;
    for (std::size_t i = 0; i < accumulated.size(); ++i) {
        float reconstructed = residual[i];
        if (si < sent.nnz() && static_cast<std::size_t>(sent.indices[si]) == i) {
            reconstructed += sent.values[si];
            ++si;
        }
        if (std::abs(reconstructed - accumulated[i]) > 1e-5f) {
            throw std::logic_error("error-feedback invariant violated");
        }
    }
}

struct RankOutput {
    std::vector<EpochMetrics> epochs;
    double mean_compute_s = 0;
    double mean_compress_s = 0;
    double mean_comm_virtual_s = 0;
    std::vector<float> final_params;
    bool completed = false;  // false: killed mid-run (elastic mode)
    int regroups = 0;
    int final_epoch = 0;  // membership epoch at completion
};

}  // namespace

const char* algorithm_name(Algorithm a) {
    switch (a) {
        case Algorithm::DenseSsgd: return "Dense S-SGD";
        case Algorithm::TopkSsgd: return "Top-k S-SGD";
        case Algorithm::GtopkSsgd: return "gTop-k S-SGD";
        case Algorithm::NaiveGtopkSsgd: return "naive gTop-k S-SGD";
        case Algorithm::SelectKFromKP: return "select-k-from-kP S-SGD";
        case Algorithm::LayerwiseGtopkSsgd: return "layer-wise gTop-k S-SGD";
    }
    return "?";
}

TrainResult train_distributed(int world_size, comm::NetworkModel net,
                              const TrainConfig& config, const ModelFactory& factory,
                              const TrainBatchProvider& train_batches,
                              const EvalBatchProvider& eval_batch) {
    std::vector<RankOutput> outputs(static_cast<std::size_t>(world_size));
    std::vector<comm::CommStats> final_stats(static_cast<std::size_t>(world_size));

    if (config.selection != sparse::SelectionPolicy::ExactTopk &&
        (config.algorithm == Algorithm::TopkSsgd ||
         config.algorithm == Algorithm::DenseSsgd)) {
        throw std::invalid_argument(
            "threshold selection policies require a gTop-k family algorithm");
    }
    if (config.overlap && config.algorithm != Algorithm::LayerwiseGtopkSsgd) {
        throw std::invalid_argument(
            "train_distributed: overlap requires LayerwiseGtopkSsgd — only "
            "per-bucket collectives can hide under backward compute");
    }
    if (config.membership && config.recv_timeout_s <= 0.0) {
        throw std::invalid_argument(
            "train_distributed: elastic mode needs recv_timeout_s > 0 — the "
            "receive deadline is how survivors detect a dead peer's stall");
    }
    if (config.membership &&
        config.recv_timeout_s >= config.membership->config().join_grace_s) {
        throw std::invalid_argument(
            "train_distributed: elastic mode needs recv_timeout_s < "
            "join_grace_s — the deadline cascade must route every survivor "
            "into the regroup round before the grace window expires, or the "
            "round finalizes without them (quorum permitting)");
    }
    if (config.local_rank >= 0) {
        if (!config.transport) {
            throw std::invalid_argument(
                "train_distributed: local_rank requires an external transport "
                "(the peer ranks live in other processes)");
        }
        if (config.local_rank >= world_size) {
            throw std::invalid_argument(
                "train_distributed: local_rank outside world");
        }
        // Elastic + local_rank is supported: MembershipService runs its
        // regroup over the wire (leader-driven JOIN/VIEW frames) when the
        // transport is not a shared-memory fabric.
    }

    auto worker = [&](Communicator& comm) {
        // Physical rank: stable identity (output slot, traces, membership).
        // comm.rank() is the LOGICAL rank under the current membership view
        // and is what batch sharding and collectives use — it changes when
        // the world regroups around a failure.
        const int rank = comm.physical_rank();
        RankOutput& out = outputs[static_cast<std::size_t>(rank)];
        const bool elastic = config.membership != nullptr;
        obs::Telemetry* const telem = config.telemetry;
        obs::FlightRecorder* const frec =
            telem ? telem->flight_recorder() : nullptr;
        if (config.recv_deadline_clock == comm::DeadlineClock::Virtual) {
            comm.set_recv_deadline(comm::DeadlineClock::Virtual,
                                   config.recv_timeout_s);
        }

        std::unique_ptr<nn::TrainableModel> model = factory(config.model_seed);
        const std::size_t m = model->num_params();
        std::vector<float> residual(m, 0.0f);
        std::vector<float> velocity(m, 0.0f);
        const bool local_momentum =
            config.momentum_mode == TrainConfig::MomentumMode::LocalCorrection &&
            config.algorithm != Algorithm::DenseSsgd;
        sparse::AdaptiveThresholdSelector adaptive(
            std::max(config.density, 1e-9), std::max(config.static_threshold, 1e-6f));
        // Hot-path scratch, reused across every iteration of this worker:
        // top-k selection temporaries and the aggregator's merge/wire
        // buffers stop allocating after the first iteration.
        sparse::TopkWorkspace select_ws;
        core::GtopkWorkspace agg_ws;
        const sparse::TopkOptions select_opts{
            .strategy = sparse::TopkStrategy::NthElement,
            .sampled_prefilter = config.topk_sampled_prefilter};
        const core::GtopkOptions agg_opts{.workspace = &agg_ws};
        util::Xoshiro256 sample_rng =
            util::Xoshiro256(config.model_seed).fork(0x5A00 + static_cast<std::uint64_t>(rank));

        // Parameter-tensor segmentation for the layer-wise variant, fused
        // into communication buckets (identity per-tensor buckets unless
        // config.bucket_bytes asks for fusion) with their backward-ready
        // fractions — the shared "ready time" definition the overlap model
        // also consumes (train/bucketer.hpp).
        std::vector<std::size_t> seg_offsets{0};
        for (const auto& p : model->params()) {
            seg_offsets.push_back(seg_offsets.back() + p.value->size());
        }
        const std::vector<GradBucket> buckets =
            fuse_buckets(seg_offsets, config.bucket_bytes);
        const std::vector<double> bucket_ready = bucket_ready_fractions(buckets, m);

        double total_compute = 0, total_compress = 0, total_comm = 0;
        std::int64_t total_iters = 0;

        const std::int64_t total_steps =
            static_cast<std::int64_t>(config.epochs) * config.iters_per_epoch;
        // Per-step losses instead of a running epoch accumulator: a
        // rollback replays steps, and overwriting slots keeps the epoch
        // metrics exact regardless of how many times a step ran.
        std::vector<double> step_loss(
            static_cast<std::size_t>(std::max<std::int64_t>(total_steps, 1)), 0.0);
        CheckpointStore ckpts(config.checkpoint_every > 0
                                  ? config.checkpoint_every
                                  : std::max<std::int64_t>(total_steps, 1));

        std::int64_t step = 0;
        bool need_resync = false;
        bool killed = false;

        while (step < total_steps) {
            try {
                if (need_resync) {
                    obs::ScopedSpan rollback_span(config.tracer, comm.clock(),
                                                  rank, "rollback", "train");
                    rollback_span.attrs().round = static_cast<int>(step);
                    // Post-regroup rollback. Survivors can straddle a
                    // checkpoint cadence boundary (synchronous SGD keeps
                    // them within one step of each other), so first agree
                    // on the newest snapshot EVERY survivor holds.
                    const std::int64_t mine = ckpts.latest_step();
                    const std::vector<std::int64_t> latest =
                        collectives::allgather<std::int64_t>(
                            comm, std::span<const std::int64_t>(&mine, 1),
                            collectives::AllgatherAlgo::Ring);
                    std::int64_t target = mine;
                    for (std::int64_t l : latest) target = std::min(target, l);
                    std::optional<Checkpoint> ck = ckpts.at(target);
                    if (!ck) throw std::logic_error("rollback checkpoint missing");
                    // Snapshots newer than the rollback point were taken on
                    // the pre-failure world; the replay runs on the survivor
                    // world and diverges, so they belong to an abandoned
                    // timeline. Prune them or a second failure during the
                    // replay could pick a stale snapshot AHEAD of current
                    // progress as its allgather-min rollback target.
                    ckpts.truncate_after(target);
                    rollback_span.finish();
                    obs::ScopedSpan resync_span(config.tracer, comm.clock(),
                                                rank, "resync", "train");
                    resync_span.attrs().round = static_cast<int>(target);
                    // Resync replica state by binomial broadcast from the
                    // lowest surviving rank (logical rank 0 of the new
                    // view). params are replica-identical at a step, so
                    // this re-certifies agreement; the residual is
                    // rank-local and restored from the own snapshot. The
                    // dead rank's residual — gradient mass it had withheld —
                    // is lost with it (DESIGN.md §12).
                    std::vector<std::int64_t> agreed{ck->step};
                    collectives::broadcast(comm, agreed, 0);
                    std::vector<float> params = ck->params;
                    collectives::broadcast(comm, params, 0);
                    if (local_momentum) {
                        // DGC-style LocalCorrection velocity is built from
                        // each rank's OWN gradient stream — rank-local like
                        // the residual, not replica-identical — so it must
                        // come from the own snapshot, never a broadcast.
                        velocity = ck->velocity;
                    } else {
                        // PostAggregation velocity is replica-identical.
                        std::vector<float> vel = ck->velocity;
                        collectives::broadcast(comm, vel, 0);
                        velocity = std::move(vel);
                    }
                    if (agreed[0] != target) {
                        throw std::logic_error("rollback step disagreement");
                    }
                    model->set_flat_params(params);
                    residual = ck->residual;
                    step = target;
                    need_resync = false;
                    if (frec) {
                        frec->note_event("rollback", rank, target, comm.epoch(),
                                         "resumed from checkpoint on world of " +
                                             std::to_string(comm.size()));
                    }
                    util::log_info("rank " + std::to_string(rank) +
                                   ": resumed from checkpoint step " +
                                   std::to_string(target) + " on world of " +
                                   std::to_string(comm.size()));
                    continue;
                }

                // A kill scheduled "at step T" (FaultPlan::kill_at_step)
                // fires inside this progress mark: the victim dies at the
                // iteration boundary having fully finished step T-1.
                comm.mark_progress(step);
                if (elastic) {
                    config.membership->tick(rank);
                    if (ckpts.due(step)) {
                        ckpts.save({step, model->flat_params(), velocity, residual});
                    }
                }

                const int epoch = static_cast<int>(step / config.iters_per_epoch);
                const bool warm =
                    epoch < static_cast<int>(config.warmup_densities.size());
                const double density =
                    warm ? config.warmup_densities[static_cast<std::size_t>(epoch)]
                         : config.density;
                const float lr =
                    warm ? config.lr * config.warmup_lr_scale : config.lr;
                const std::size_t k = std::max<std::size_t>(
                    1, static_cast<std::size_t>(
                           std::llround(density * static_cast<double>(m))));
                // Threshold policies have no well-defined global k; the tree
                // then runs untruncated (a pure sparse sum-allreduce) and the
                // thresholding alone provides the sparsity.
                const std::size_t agg_k =
                    config.selection == sparse::SelectionPolicy::ExactTopk ? k : m;

                obs::ScopedSpan iter_span(config.tracer, comm.clock(), rank,
                                          "iteration", "train");
                iter_span.attrs().round = static_cast<int>(step);
                // --- compute phase (host-timed) ---
                const double t0 = now_host_s();
                obs::ScopedSpan compute_span(config.tracer, comm.clock(), rank,
                                             "compute", "train");
                compute_span.attrs().round = static_cast<int>(step);
                // Batches shard by LOGICAL rank: after a regroup the
                // survivor world re-partitions the data stream among
                // comm.size() workers with no gaps.
                nn::Batch batch = train_batches(step, comm.rank());
                const double loss = model->train_step_gradients(batch);
                step_loss[static_cast<std::size_t>(step)] = loss;
                std::vector<float> grad = model->flat_grads();
                // DGC-style local gradient clipping (scale to the L2 ball).
                if (config.gradient_clip_norm > 0.0f) {
                    double norm_sq = 0.0;
                    for (float g : grad) norm_sq += static_cast<double>(g) * g;
                    const double norm = std::sqrt(norm_sq);
                    if (norm > config.gradient_clip_norm) {
                        const float scale =
                            config.gradient_clip_norm / static_cast<float>(norm);
                        for (float& g : grad) g *= scale;
                    }
                }
                // DGC momentum correction: momentum is folded into the
                // LOCAL stream before residual accumulation.
                if (local_momentum) {
                    for (std::size_t i = 0; i < m; ++i) {
                        velocity[i] = config.momentum * velocity[i] + grad[i];
                        grad[i] = velocity[i];
                    }
                }
                // Accumulate the residual (Alg. 4 line 4).
                std::vector<float> accumulated = std::move(grad);
                if (config.algorithm != Algorithm::DenseSsgd) {
                    for (std::size_t i = 0; i < m; ++i) accumulated[i] += residual[i];
                }
                compute_span.finish();
                const double t1 = now_host_s();

                // --- compress phase (host-timed) ---
                obs::ScopedSpan select_span(config.tracer, comm.clock(), rank,
                                            "select", "train");
                select_span.attrs().round = static_cast<int>(step);
                SparseGradient local;
                std::vector<SparseGradient> seg_locals;  // layer-wise only
                if (config.algorithm == Algorithm::LayerwiseGtopkSsgd) {
                    residual = accumulated;
                    seg_locals.reserve(buckets.size());
                    for (const GradBucket& b : buckets) {
                        const std::size_t off = b.begin;
                        const std::size_t len = b.size();
                        const std::size_t k_seg = std::max<std::size_t>(
                            1, static_cast<std::size_t>(std::llround(
                                   density * static_cast<double>(len))));
                        const std::span<const float> seg(accumulated.data() + off, len);
                        SparseGradient sel =
                            sparse::topk_select(seg, k_seg, select_ws, select_opts);
                        sparse::zero_selected(
                            std::span<float>(residual.data() + off, len), sel);
                        seg_locals.push_back(std::move(sel));
                    }
                } else if (config.algorithm != Algorithm::DenseSsgd) {
                    switch (config.selection) {
                        case sparse::SelectionPolicy::ExactTopk:
                            sparse::topk_select_into(accumulated, k, select_ws, local,
                                                     select_opts);
                            break;
                        case sparse::SelectionPolicy::StaticThreshold:
                            local = sparse::threshold_select(accumulated,
                                                             config.static_threshold);
                            break;
                        case sparse::SelectionPolicy::AdaptiveThreshold:
                            local = adaptive.select(accumulated);
                            break;
                        case sparse::SelectionPolicy::SampledTopk:
                            local = sparse::sampled_topk_select(accumulated, k,
                                                                sample_rng);
                            break;
                    }
                    residual = accumulated;
                    sparse::zero_selected(residual, local);
                    if (config.check_invariants) {
                        check_error_feedback(accumulated, residual, local);
                    }
                    // Combined sparsification + quantization: ship lossy
                    // values, feed the quantization error back into the
                    // residual so no gradient mass is lost.
                    if (config.value_quantizer != quant::Scheme::None) {
                        const std::vector<float> lossy =
                            quant::quantize_dequantize(local.values,
                                                       config.value_quantizer);
                        for (std::size_t i = 0; i < local.nnz(); ++i) {
                            residual[static_cast<std::size_t>(local.indices[i])] +=
                                local.values[i] - lossy[i];
                        }
                        local.values = lossy;
                    }
                }
                select_span.attrs().nnz = static_cast<std::int64_t>(local.nnz());
                select_span.finish();
                const double t2 = now_host_s();

                // --- communication phase (virtual-timed) ---
                // CommStats snapped tightly around the aggregation so the
                // telemetry wire deltas exclude epoch-boundary loss
                // allgathers and the telemetry exchange itself.
                const comm::CommStats agg_pre = comm.stats();
                const double v0 = comm.clock().now_s();
                obs::ScopedSpan agg_span(config.tracer, comm.clock(), rank,
                                         "aggregate", "train");
                agg_span.attrs().round = static_cast<int>(step);
                agg_span.attrs().nnz = static_cast<std::int64_t>(local.nnz());
                std::vector<float> update;  // mean over workers, dense
                switch (config.algorithm) {
                    case Algorithm::DenseSsgd: {
                        update = core::dense_allreduce(comm, accumulated);
                        const float inv = 1.0f / static_cast<float>(comm.size());
                        for (float& u : update) u *= inv;
                        break;
                    }
                    case Algorithm::TopkSsgd: {
                        update = core::topk_allreduce(comm, local);
                        const float inv = 1.0f / static_cast<float>(comm.size());
                        for (float& u : update) u *= inv;
                        break;
                    }
                    case Algorithm::LayerwiseGtopkSsgd: {
                        // One independent gTop-k per bucket; the put-back
                        // (line 10) works in bucket-local coordinates,
                        // shifted into the flat residual. The overlap path
                        // runs the SAME per-bucket collectives as async
                        // handles, issued in backward (gradient-ready)
                        // order and drained front-first — only virtual
                        // scheduling changes, never the math, so params are
                        // bit-identical with overlap on or off.
                        update.assign(m, 0.0f);
                        const float inv = 1.0f / static_cast<float>(comm.size());
                        const double agg_v_start = comm.clock().now_s();
                        std::vector<std::unique_ptr<core::AsyncGtopkAllreduce>>
                            handles;
                        if (config.overlap) {
                            handles.resize(seg_locals.size());
                            for (std::size_t i = seg_locals.size(); i-- > 0;) {
                                // Gradient-ready injection: the bucket's
                                // collective may not start before backward
                                // has produced its gradients.
                                if (config.overlap_backward_s > 0.0) {
                                    comm.clock().advance_to(
                                        agg_v_start +
                                        bucket_ready[i] *
                                            config.overlap_backward_s);
                                }
                                handles[i] =
                                    std::make_unique<core::AsyncGtopkAllreduce>(
                                        comm, seg_locals[i], seg_locals[i].nnz(),
                                        &agg_ws.merge);
                                handles[i]->set_priority(buckets[i].priority);
                                handles[i]->start();
                            }
                            if (config.overlap_backward_s > 0.0) {
                                comm.clock().advance_to(
                                    agg_v_start + config.overlap_backward_s);
                            }
                        } else if (config.overlap_backward_s > 0.0) {
                            // Same modeled backward charge, fully serialized
                            // ahead of the communication — the overlap-off
                            // baseline the benches compare against.
                            comm.clock().advance(config.overlap_backward_s);
                        }
                        for (std::size_t s = 0; s < seg_locals.size(); ++s) {
                            const std::size_t off = buckets[s].begin;
                            const SparseGradient& seg_local = seg_locals[s];
                            core::GtopkResult res;
                            if (config.overlap) {
                                handles[s]->wait();
                            } else {
                                res = core::gtopk_allreduce(
                                    comm, seg_local, seg_local.nnz(), agg_opts);
                            }
                            const SparseGradient& global = config.overlap
                                                               ? handles[s]->result()
                                                               : res.global;
                            std::size_t gi = 0;
                            for (std::size_t li = 0; li < seg_local.nnz(); ++li) {
                                const std::int32_t idx = seg_local.indices[li];
                                while (gi < global.nnz() &&
                                       global.indices[gi] < idx) {
                                    ++gi;
                                }
                                const bool kept = gi < global.nnz() &&
                                                  global.indices[gi] == idx;
                                if (!kept) {
                                    residual[off + static_cast<std::size_t>(idx)] +=
                                        seg_local.values[li];
                                }
                            }
                            for (std::size_t gj = 0; gj < global.nnz(); ++gj) {
                                update[off + static_cast<std::size_t>(
                                                 global.indices[gj])] =
                                    global.values[gj] * inv;
                            }
                        }
                        break;
                    }
                    case Algorithm::GtopkSsgd:
                    case Algorithm::NaiveGtopkSsgd:
                    case Algorithm::SelectKFromKP: {
                        core::GtopkResult res =
                            config.algorithm == Algorithm::NaiveGtopkSsgd
                                ? core::naive_gtopk_allreduce(comm, local, agg_k)
                                : core::gtopk_allreduce(comm, local, agg_k, agg_opts);
                        if (config.algorithm != Algorithm::SelectKFromKP) {
                            // Alg. 4 line 10.
                            return_unselected(residual, local, res.global);
                        }
                        update = sparse_to_mean_dense(res.global, comm.size());
                        break;
                    }
                }
                agg_span.finish();
                const double v1 = comm.clock().now_s();
                const comm::CommStats agg_post = comm.stats();

                // --- update phase. PostAggregation: momentum SGD on the
                // aggregated mean (identical on every rank). With DGC-style
                // LocalCorrection the momentum already happened upstream,
                // so the aggregate is applied as plain SGD.
                const double u0 = now_host_s();
                obs::ScopedSpan update_span(config.tracer, comm.clock(), rank,
                                            "update", "train");
                update_span.attrs().round = static_cast<int>(step);
                std::vector<float> delta(m);
                if (local_momentum) {
                    for (std::size_t i = 0; i < m; ++i) delta[i] = -lr * update[i];
                } else {
                    for (std::size_t i = 0; i < m; ++i) {
                        velocity[i] = config.momentum * velocity[i] + update[i];
                        delta[i] = -lr * velocity[i];
                    }
                }
                model->add_flat_delta(delta);
                update_span.finish();
                const double u1 = now_host_s();

                total_compute += t1 - t0;
                total_compress += t2 - t1;
                total_comm += v1 - v0;
                ++total_iters;

                // --- telemetry exchange (absolute-tag band, so the SPMD
                // fresh-tag cursor and hence the trajectory are untouched).
                if (telem) {
                    obs::RankIterStats st;
                    st.step = step;
                    st.regroups = out.regroups;
                    st.compute_host_s = t1 - t0;
                    st.compress_host_s = t2 - t1;
                    st.comm_virtual_s = v1 - v0;
                    st.update_host_s = u1 - u0;
                    st.wire_bytes_sent = static_cast<std::int64_t>(
                        agg_post.bytes_sent - agg_pre.bytes_sent);
                    st.wire_bytes_received = static_cast<std::int64_t>(
                        agg_post.bytes_received - agg_pre.bytes_received);
                    st.messages_sent = static_cast<std::int64_t>(
                        agg_post.messages_sent - agg_pre.messages_sent);
                    st.messages_received = static_cast<std::int64_t>(
                        agg_post.messages_received - agg_pre.messages_received);
                    if (config.algorithm == Algorithm::LayerwiseGtopkSsgd) {
                        st.nnz = 0;
                        for (const SparseGradient& sl : seg_locals) {
                            st.nnz += static_cast<std::int64_t>(sl.nnz());
                        }
                    } else if (config.algorithm != Algorithm::DenseSsgd) {
                        st.nnz = static_cast<std::int64_t>(local.nnz());
                    }
                    st.mailbox_depth =
                        static_cast<std::int64_t>(comm.mailbox_depth());
                    if (config.tracer) {
                        obs::fold_fault_counters(config.tracer->metrics(), st);
                    }

                    // Attribution join key for this iteration's aggregation
                    // collective. Sparse wire blocks are 16 header bytes +
                    // 8 per entry; only ExactTopk has a fixed k to predict.
                    obs::CollectiveSpec spec;
                    const obs::CollectiveSpec* specp = nullptr;
                    const std::int64_t mi = static_cast<std::int64_t>(m);
                    const std::int64_t ki = static_cast<std::int64_t>(k);
                    const bool exact =
                        config.selection == sparse::SelectionPolicy::ExactTopk;
                    switch (config.algorithm) {
                        case Algorithm::DenseSsgd:
                            spec = {"allreduce.ring", mi, 4, mi, 0};
                            specp = &spec;
                            break;
                        case Algorithm::TopkSsgd:
                            spec = {"allgather.recursive_doubling",
                                    16 + 8 * ki, 1, mi, ki};
                            specp = &spec;
                            break;
                        case Algorithm::GtopkSsgd:
                        case Algorithm::SelectKFromKP:
                            if (exact) {
                                spec = {"gtopk.allreduce", 16 + 8 * ki, 1, mi,
                                        ki};
                                specp = &spec;
                            }
                            break;
                        case Algorithm::NaiveGtopkSsgd:
                            if (exact) {
                                // Variable-byte wire: counts are predicted,
                                // bytes/time are not.
                                spec = {"allgatherv.ring", 16 + 8 * ki, 1, mi,
                                        ki};
                                specp = &spec;
                            }
                            break;
                        case Algorithm::LayerwiseGtopkSsgd:
                            break;  // one collective per tensor; no single key
                    }

                    obs::ScopedSpan telem_span(config.tracer, comm.clock(),
                                               rank, "telemetry", "train");
                    telem_span.attrs().round = static_cast<int>(step);
                    telem->exchange(comm, st, specp);
                }

                // --- end-of-epoch boundary ---
                if ((step + 1) % config.iters_per_epoch == 0) {
                    EpochMetrics em;
                    em.epoch = epoch;
                    em.density = density;
                    // Average the per-rank epoch losses (one double via
                    // allgather; negligible traffic, after the timed phases).
                    double epoch_loss = 0.0;
                    const std::int64_t first =
                        static_cast<std::int64_t>(epoch) * config.iters_per_epoch;
                    for (std::int64_t s = first; s <= step; ++s) {
                        epoch_loss += step_loss[static_cast<std::size_t>(s)];
                    }
                    const double my_loss = epoch_loss / config.iters_per_epoch;
                    const std::vector<double> losses = collectives::allgather<double>(
                        comm, std::span<const double>(&my_loss, 1),
                        collectives::AllgatherAlgo::Ring);
                    double sum = 0;
                    for (double l : losses) sum += l;
                    em.train_loss = sum / static_cast<double>(losses.size());

                    if (eval_batch) {
                        nn::Batch eb = eval_batch();
                        if (eb.x.numel() > 0) {
                            em.val_loss = model->eval_loss(eb);
                            em.val_accuracy = model->eval_accuracy(eb);
                        }
                    }
                    // Slot-assign, not push: a rollback can replay an epoch
                    // boundary and must overwrite the stale entry.
                    if (out.epochs.size() <= static_cast<std::size_t>(epoch)) {
                        out.epochs.resize(static_cast<std::size_t>(epoch) + 1);
                    }
                    out.epochs[static_cast<std::size_t>(epoch)] = em;

                    if (config.check_invariants) {
                        // Replica consistency: all (surviving) ranks must
                        // hold identical params.
                        const std::vector<float> params = model->flat_params();
                        std::vector<float> sum_params = params;
                        collectives::allreduce_sum_ring(comm, sum_params);
                        for (std::size_t i = 0; i < params.size(); ++i) {
                            const float mean =
                                sum_params[i] / static_cast<float>(comm.size());
                            if (std::abs(mean - params[i]) >
                                1e-4f * (1.0f + std::abs(params[i]))) {
                                throw std::logic_error("replica divergence detected");
                            }
                        }
                    }
                }
                ++step;
            } catch (const comm::CommError& err) {
                if (!elastic) {
                    if (frec) {
                        frec->note_event("comm_error", rank, step, comm.epoch(),
                                         err.what());
                    }
                    throw;  // fail-fast: abort the whole run
                }
                if (err.kind() == comm::CommErrorKind::RankKilled ||
                    !config.membership->alive(rank)) {
                    // This rank is the casualty (a kill landing mid-wait
                    // surfaces as RecvTimeout, hence the alive() check).
                    // Exit CLEANLY: throwing would shut the cluster down
                    // under the survivors while they regroup.
                    if (frec) {
                        frec->note_event("rank_killed", rank, step, comm.epoch(),
                                         err.what());
                    }
                    config.membership->leave(rank);
                    killed = true;
                    util::log_info("rank " + std::to_string(rank) +
                                   " killed; leaving membership");
                    break;
                }
                // A peer stopped responding: regroup into the survivor
                // world, install the new epoch-stamped view, then roll back
                // and resync on the next loop entry.
                if (frec) {
                    frec->note_event("comm_error", rank, step, comm.epoch(),
                                     err.what());
                }
                obs::ScopedSpan regroup_span(config.tracer, comm.clock(), rank,
                                             "regroup", "train");
                regroup_span.attrs().round = static_cast<int>(step);
                const comm::MembershipView view = config.membership->regroup(rank);
                comm.set_view(view.members, view.epoch);
                regroup_span.finish();
                ++out.regroups;
                need_resync = true;
                if (frec) {
                    frec->note_membership(view.epoch, view.members, rank, step);
                    frec->note_event("regroup", rank, step, view.epoch,
                                     "survivor world of " +
                                         std::to_string(view.members.size()));
                }
                util::log_info("rank " + std::to_string(rank) +
                               ": regrouped into epoch " + std::to_string(view.epoch) +
                               " with " + std::to_string(view.members.size()) +
                               " member(s)");
            }
        }

        if (total_iters > 0) {
            out.mean_compute_s = total_compute / static_cast<double>(total_iters);
            out.mean_compress_s = total_compress / static_cast<double>(total_iters);
            out.mean_comm_virtual_s = total_comm / static_cast<double>(total_iters);
        }
        if (!killed) {
            out.completed = true;
            out.final_params = model->flat_params();
            out.final_epoch = elastic ? config.membership->epoch() : 0;
        }
        final_stats[static_cast<std::size_t>(rank)] = comm.stats();
    };

    // The flight recorder's span-reading dump must come from this driver
    // thread after the cluster joined (TSan contract in flight_recorder.hpp):
    // on an aborted run as the exception unwinds, on a survived run once all
    // workers returned.
    obs::FlightRecorder* const frec =
        config.telemetry ? config.telemetry->flight_recorder() : nullptr;
    try {
        if (config.transport) {
            if (config.transport->world_size() != world_size) {
                throw std::invalid_argument(
                    "train_distributed: transport world_size mismatch");
            }
            if (config.local_rank >= 0) {
                // Multi-process deployment: this process drives exactly one
                // rank; its peers run the same code elsewhere.
                comm::Cluster::run_local(*config.transport, config.local_rank,
                                         net, worker, config.tracer,
                                         config.recv_timeout_s);
            } else {
                comm::Cluster::run_on(*config.transport, net, worker,
                                      config.tracer, config.recv_timeout_s);
            }
        } else {
            comm::Cluster::run(world_size, net, worker, config.tracer,
                               config.recv_timeout_s);
        }
    } catch (...) {
        if (frec) frec->dump("aborted", config.tracer);
        throw;
    }
    if (frec && frec->triggered()) frec->dump("recovered", config.tracer);

    // The lead replica is the lowest rank that FINISHED training — physical
    // rank 0 unless an elastic run lost it. In local_rank mode only the
    // local slot can be populated; every other rank reports from its own
    // process.
    int lead = -1;
    for (int r = 0; r < world_size; ++r) {
        if (outputs[static_cast<std::size_t>(r)].completed) {
            lead = r;
            break;
        }
    }
    if (lead < 0) {
        if (config.local_rank >= 0 && config.membership) {
            // Multi-process elastic run and the LOCAL rank was the casualty:
            // its clean leave() is the whole story for this process, so
            // surface the typed death the worker's exit contract maps onto
            // rather than a generic abort.
            throw comm::CommError(comm::CommErrorKind::RankKilled,
                                  config.local_rank, comm::kAnySource,
                                  comm::kAnyTag, 0.0);
        }
        throw std::runtime_error("train_distributed: no rank completed training");
    }

    TrainResult result;
    const RankOutput& lo = outputs[static_cast<std::size_t>(lead)];
    result.epochs = lo.epochs;
    result.mean_compute_s = lo.mean_compute_s;
    result.mean_compress_s = lo.mean_compress_s;
    result.mean_comm_virtual_s = lo.mean_comm_virtual_s;
    result.rank0_comm = final_stats[static_cast<std::size_t>(lead)];
    if (config.tracer) {
        result.rank0_traced_phases =
            obs::summarize_train_phases(*config.tracer, lead);
    }
    result.final_membership_epoch = lo.final_epoch;
    result.regroups = lo.regroups;
    for (int r = 0; r < world_size; ++r) {
        RankOutput& ro = outputs[static_cast<std::size_t>(r)];
        if (!ro.completed) continue;
        result.final_members.push_back(r);
        result.survivor_params.push_back(std::move(ro.final_params));
    }
    result.final_params = result.survivor_params.front();
    return result;
}

}  // namespace gtopk::train
