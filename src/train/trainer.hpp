// Distributed S-SGD trainers — the paper's Algorithms 1 (Top-k), 2 (naive
// gTop-k), 4 (gTop-k with gTopKAllReduce), plus dense S-SGD (Eq. 3) and the
// Fig. 1 "select k from k*P without residual return" variant.
//
// All variants share one worker loop that differs only in the aggregation
// step; every worker runs the loop on the virtual-time cluster. Replica
// consistency (identical parameters on every rank after every iteration) is
// an invariant tested by the integration suite.
//
// Residual bookkeeping (error feedback), following the paper exactly:
//   G^g_i   = residual + local gradient            (Alg. 4 line 4)
//   local   = top-k(G^g_i)                         (lines 5-7)
//   residual = G^g_i  - local                      (line 8)
//   after aggregation, the locally-selected entries that did NOT survive
//   the global selection are put back:
//   residual += local ⊙ ¬gMask                     (line 10)
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "comm/cluster.hpp"
#include "comm/membership.hpp"
#include "core/aggregators.hpp"
#include "nn/model.hpp"
#include "obs/trace.hpp"
#include "quant/quantizer.hpp"
#include "sparse/selection_policy.hpp"

namespace gtopk::obs {
class Telemetry;
}

namespace gtopk::train {

enum class Algorithm {
    DenseSsgd,          // Eq. 3, ring allreduce on full gradients
    TopkSsgd,           // Algorithm 1
    GtopkSsgd,          // Algorithm 4 (tree gTopKAllReduce)
    NaiveGtopkSsgd,     // Algorithm 2 (AllGather + global re-selection)
    SelectKFromKP,      // Fig. 1 variant: gTop-k without the line-10 put-back
    LayerwiseGtopkSsgd, // paper Sec. VII future work: one gTop-k per
                        // parameter tensor (k_l = rho * m_l), enabling
                        // communication/computation overlap
};

const char* algorithm_name(Algorithm a);

struct TrainConfig {
    Algorithm algorithm = Algorithm::GtopkSsgd;
    int epochs = 10;
    int iters_per_epoch = 50;
    float lr = 0.05f;
    float momentum = 0.9f;
    double density = 1e-3;
    /// Densities for the first warmup epochs (paper: [0.25, 0.0725, 0.015,
    /// 0.004] before settling at `density`). Empty = no warmup.
    std::vector<double> warmup_densities;
    /// LR multiplier during warmup epochs (paper uses "small learning
    /// rates" during warmup).
    float warmup_lr_scale = 0.25f;
    std::uint64_t model_seed = 42;
    /// When true, every iteration asserts the error-feedback invariant
    /// (residual + sent == accumulated gradient) and replica consistency.
    bool check_invariants = false;

    /// How the local sparse contribution is selected (gTop-k family only;
    /// TopKAllReduce's wire format requires ExactTopk). Threshold policies
    /// produce variable nnz, which the tree aggregation tolerates.
    sparse::SelectionPolicy selection = sparse::SelectionPolicy::ExactTopk;
    /// ExactTopk only: sampled-threshold pre-filter before the exact
    /// selection (see sparse::TopkOptions). Guaranteed bit-identical
    /// trajectories on or off (exact fallback); exposed so the determinism
    /// test can assert exactly that.
    bool topk_sampled_prefilter = true;
    /// Fixed |g| cutoff for SelectionPolicy::StaticThreshold.
    float static_threshold = 1e-3f;

    /// DGC-style local gradient clipping (Lin et al. [12]): before residual
    /// accumulation, scale the local gradient so its L2 norm is at most
    /// this value. 0 disables.
    float gradient_clip_norm = 0.0f;

    /// Where momentum lives. PostAggregation (default, used by the paper's
    /// setup here): one velocity on the aggregated mean update, identical
    /// on all replicas. LocalCorrection (DGC momentum correction): each
    /// worker applies momentum to its LOCAL gradient before residual
    /// accumulation, and the aggregated update is applied with plain SGD.
    enum class MomentumMode { PostAggregation, LocalCorrection };
    MomentumMode momentum_mode = MomentumMode::PostAggregation;

    /// Combined sparsification + quantization (paper Sec. VI): the selected
    /// values are quantized before leaving the worker and the quantization
    /// error is returned to the residual (error feedback), so convergence
    /// is preserved. Indices stay exact. None = fp32 values.
    quant::Scheme value_quantizer = quant::Scheme::None;

    /// Observability: non-null enables per-phase span tracing on every rank
    /// (worker-loop phases, collectives, gTop-k merge rounds, send/recv).
    /// The tracer must outlive train_distributed and cover world_size
    /// ranks. nullptr (default) compiles the traced paths down to
    /// branch-on-null.
    obs::Tracer* tracer = nullptr;

    /// External transport for the training cluster (e.g. a
    /// comm::FaultInjectingTransport for chaos runs); its world_size must
    /// equal the training world. nullptr (default) = fresh InProcTransport.
    /// Must outlive train_distributed; one transport per run.
    comm::Transport* transport = nullptr;

    /// Multi-process mode: >= 0 makes train_distributed drive ONLY this
    /// rank, on the calling thread, over the external `transport` (required;
    /// typically a comm::TcpTransport whose peer ranks live in other OS
    /// processes launched by tools/gtopkrun). The returned TrainResult then
    /// describes this rank alone: final_params is the local replica,
    /// final_members == {local_rank}. Composes with `membership`: on a
    /// non-shared-memory transport the regroup round runs over the wire
    /// (leader-collected JOIN frames, broadcast VIEW), so a SIGKILLed peer
    /// yields the same elastic shrink as the in-process barrier; if the
    /// LOCAL rank is the casualty, train_distributed throws the typed
    /// comm::CommError(RankKilled) the process exit contract maps onto.
    /// -1 (default): the classic mode, one thread per rank in this process.
    int local_rank = -1;

    /// Receive deadline (host seconds) armed on every rank; <= 0 waits
    /// forever. Chaos runs set this so dropped messages surface as a typed
    /// comm::CommError instead of hanging the cluster.
    double recv_timeout_s = 0.0;

    /// Clock the receive deadline is measured on. Virtual makes timeout
    /// OUTCOMES deterministic (they depend on modeled arrivals only); Host
    /// (default) is the stall detector elastic recovery relies on.
    comm::DeadlineClock recv_deadline_clock = comm::DeadlineClock::Host;

    /// Membership service enabling the self-healing runtime (must span the
    /// same transport and outlive train_distributed). With it, a rank kill
    /// no longer aborts the run: the dead rank leaves, survivors detect the
    /// stall via their receive deadline, regroup into a new epoch-stamped
    /// view, roll back to the newest common checkpoint, resync state by
    /// binomial broadcast from the lowest surviving rank, and finish the
    /// run on the smaller world. Requires recv_timeout_s > 0 (the stall
    /// detector is what routes survivors into the regroup). nullptr
    /// (default) keeps the fail-fast behavior: any CommError aborts.
    comm::MembershipService* membership = nullptr;

    /// In-memory checkpoint cadence in steps (elastic runs only). A
    /// snapshot is always taken at step 0 so a rollback target exists from
    /// the first iteration; <= 0 keeps only that one.
    int checkpoint_every = 0;

    /// --- layer-wise overlap (LayerwiseGtopkSsgd only) ---
    /// Overlapped aggregation: per-bucket gTop-k collectives are issued in
    /// backward (gradient-ready) order as AsyncCollective handles and
    /// drained front-bucket-first (P3 priority), so communication hides
    /// under the modeled backward compute on the virtual-time network. Off
    /// (default): the sequential per-bucket loop, bit-identical to pre-
    /// overlap behavior. Scheduling may not change math: final params are
    /// bit-identical with overlap on or off for the same seed.
    bool overlap = false;
    /// Tensor-fusion threshold: consecutive parameter tensors are fused
    /// (in backward order) into buckets of at least this many gradient
    /// payload bytes (train/bucketer.hpp). <= 0 (default) keeps one bucket
    /// per tensor — the historical per-tensor granularity. Applies to
    /// selection AND aggregation, independent of `overlap`.
    std::int64_t bucket_bytes = 0;
    /// Modeled backward-pass time injected into the VIRTUAL clock during
    /// layer-wise aggregation: with overlap on, each bucket's collective is
    /// issued only once the clock reaches its bucketer-defined ready time
    /// (ready_fraction * this); with overlap off, the full backward time is
    /// charged before the sequential loop. 0 (default): no injection —
    /// virtual time measures pure communication, as before. Benches set it
    /// from profiled compute so overlap is measurable in virtual time.
    double overlap_backward_s = 0.0;

    /// Cluster telemetry plane (obs/telemetry.hpp): non-null makes every
    /// rank fold its iteration into a RankIterStats and run the global
    /// stats allgather each step, driving any attached attribution /
    /// straggler / flight-recorder consumers. The exchange rides the
    /// reserved absolute-tag band, so the training trajectory is
    /// bit-identical with telemetry on or off. Must cover world_size ranks
    /// and outlive train_distributed. nullptr (default): disabled,
    /// branch-on-null only.
    obs::Telemetry* telemetry = nullptr;
};

/// Builds one model replica; called once per rank with the same seed so all
/// replicas are identical.
using ModelFactory =
    std::function<std::unique_ptr<nn::TrainableModel>(std::uint64_t seed)>;

/// Training batch for (global step, rank) — rank-sharded by the caller.
using TrainBatchProvider = std::function<nn::Batch(std::int64_t step, int rank)>;

/// Fixed evaluation batch (same on every rank); may be empty (no eval).
using EvalBatchProvider = std::function<nn::Batch()>;

struct EpochMetrics {
    int epoch = 0;
    double density = 1.0;
    double train_loss = 0.0;     // mean over the epoch's iterations, all ranks
    double val_loss = 0.0;
    double val_accuracy = 0.0;
};

struct TrainResult {
    std::vector<EpochMetrics> epochs;
    /// Mean per-iteration phase costs: compute/compress in host seconds,
    /// comm in modeled (virtual) seconds on rank 0.
    double mean_compute_s = 0.0;
    double mean_compress_s = 0.0;
    double mean_comm_virtual_s = 0.0;
    comm::CommStats rank0_comm;
    /// Rank 0's phase totals derived from the tracer's spans (all zeros
    /// when config.tracer == nullptr). With a large-enough ring buffer this
    /// reproduces the mean_* accumulators above from the trace alone.
    obs::PhaseTotals rank0_traced_phases;
    /// Lead replica's parameters. The lead is the lowest rank that FINISHED
    /// training — physical rank 0 unless it was killed in an elastic run.
    std::vector<float> final_params;

    // --- self-healing runtime outcome (identity values when no membership
    // service was configured or no failure occurred) ---
    /// Physical ranks that completed training (the final survivor world).
    std::vector<int> final_members;
    /// Final parameters per final_members entry; replica consistency means
    /// these should be bit-identical across survivors.
    std::vector<std::vector<float>> survivor_params;
    /// Membership epoch at completion (0 = no regroup ever happened).
    int final_membership_epoch = 0;
    /// Regroups the lead rank participated in.
    int regroups = 0;
};

TrainResult train_distributed(int world_size, comm::NetworkModel net,
                              const TrainConfig& config, const ModelFactory& factory,
                              const TrainBatchProvider& train_batches,
                              const EvalBatchProvider& eval_batch);

}  // namespace gtopk::train
