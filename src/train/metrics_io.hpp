// Metrics export: write training curves to CSV so runs can be plotted or
// diffed outside the process (benches and examples use this behind a flag).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "train/trainer.hpp"

namespace gtopk::train {

/// CSV with header "epoch,density,train_loss,val_loss,val_accuracy".
void write_metrics_csv(std::ostream& os, const std::vector<EpochMetrics>& epochs);
void write_metrics_csv_file(const std::string& path,
                            const std::vector<EpochMetrics>& epochs);

/// Parse metrics written by write_metrics_csv. Throws on malformed input.
std::vector<EpochMetrics> read_metrics_csv(std::istream& is);

}  // namespace gtopk::train
