#include "train/checkpoint.hpp"

#include <stdexcept>

namespace gtopk::train {

CheckpointStore::CheckpointStore(std::int64_t interval, std::size_t keep)
    : interval_(interval), keep_(keep) {
    if (interval_ <= 0) throw std::invalid_argument("checkpoint interval must be > 0");
    if (keep_ == 0) throw std::invalid_argument("checkpoint keep must be > 0");
}

bool CheckpointStore::due(std::int64_t step) const {
    return step % interval_ == 0;
}

void CheckpointStore::save(Checkpoint ckpt) {
    if (!ring_.empty() && ckpt.step <= ring_.back().step) {
        // A replay revisits the rollback step itself, whose snapshot we
        // still hold (truncate_after pruned everything newer); the restored
        // state is that snapshot bit for bit, so re-saving is a no-op.
        return;
    }
    ring_.push_back(std::move(ckpt));
    while (ring_.size() > keep_) ring_.pop_front();
}

void CheckpointStore::truncate_after(std::int64_t step) {
    while (!ring_.empty() && ring_.back().step > step) ring_.pop_back();
}

std::optional<Checkpoint> CheckpointStore::latest_at_or_before(
    std::int64_t max_step) const {
    for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
        if (it->step <= max_step) return *it;
    }
    return std::nullopt;
}

std::int64_t CheckpointStore::latest_step() const {
    return ring_.empty() ? -1 : ring_.back().step;
}

std::optional<Checkpoint> CheckpointStore::at(std::int64_t step) const {
    for (const Checkpoint& c : ring_) {
        if (c.step == step) return c;
    }
    return std::nullopt;
}

}  // namespace gtopk::train
