// Gradient bucketing for overlapped layer-wise gTop-k (DESIGN.md §14).
//
// Backward propagation produces parameter-tensor gradients from the LAST
// tensor to the FIRST, so each tensor's aggregation could start while
// earlier tensors are still computing — but tiny tensors make terrible
// collectives (alpha-dominated). The bucketer fuses CONSECUTIVE tensors,
// walking in backward order, into buckets of at least `bucket_bytes` of
// gradient payload (MG-WFBP-style tensor fusion), and assigns P3-style
// priorities: the front-most bucket — the parameters the NEXT iteration's
// forward pass needs first — gets the highest priority (lowest value).
//
// The ready-time fractions computed here are the ONE definition of "when is
// a bucket's gradient available" shared by the runtime (the trainer advances
// the virtual clock to ready_fraction * t_backward before issuing a bucket's
// collective) and the prediction (perfmodel::overlapped_pipeline consumes
// the same fractions), so the overlap model and the implementation cannot
// drift on what "ready" means.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace gtopk::train {

/// One fused communication bucket: a contiguous flat-parameter range
/// covering parameter tensors [first_segment, last_segment].
struct GradBucket {
    std::size_t begin = 0;  // flat element offset, inclusive
    std::size_t end = 0;    // flat element offset, exclusive
    int first_segment = 0;
    int last_segment = 0;
    /// Drain priority: 0 = front-most bucket (needed first by the next
    /// forward pass) = served first.
    int priority = 0;

    std::size_t size() const { return end - begin; }
};

/// Fuse parameter-tensor segments (seg_offsets as produced from
/// model->params(): seg_offsets[s]..seg_offsets[s+1] is tensor s) into
/// buckets of >= bucket_bytes of fp32 gradient payload each, walking in
/// BACKWARD order so fusion follows gradient-ready order. bucket_bytes <= 0
/// keeps one bucket per tensor — with that default the layer-wise
/// trainer's selection and aggregation granularity is exactly the pre-fusion
/// per-tensor behavior. Returned in FORWARD order (ascending offsets) with
/// priority == forward index.
std::vector<GradBucket> fuse_buckets(std::span<const std::size_t> seg_offsets,
                                     std::int64_t bucket_bytes);

/// Fraction of the backward pass completed when each bucket's gradient is
/// ready, indexed like `buckets` (forward order). Backward time is split
/// proportionally to element count (the overlap model's assumption), and
/// backward sweeps back-to-front, so bucket b is ready at
/// (total_elems - b.begin) / total_elems.
std::vector<double> bucket_ready_fractions(std::span<const GradBucket> buckets,
                                           std::size_t total_elems);

}  // namespace gtopk::train
