#include "train/metrics_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace gtopk::train {

namespace {
constexpr const char* kHeader = "epoch,density,train_loss,val_loss,val_accuracy";
}

void write_metrics_csv(std::ostream& os, const std::vector<EpochMetrics>& epochs) {
    os << kHeader << "\n";
    os.precision(17);
    for (const auto& e : epochs) {
        os << e.epoch << ',' << e.density << ',' << e.train_loss << ',' << e.val_loss
           << ',' << e.val_accuracy << "\n";
    }
}

void write_metrics_csv_file(const std::string& path,
                            const std::vector<EpochMetrics>& epochs) {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot open " + path + " for writing");
    write_metrics_csv(out, epochs);
}

std::vector<EpochMetrics> read_metrics_csv(std::istream& is) {
    std::string line;
    if (!std::getline(is, line) || line != kHeader) {
        throw std::invalid_argument("metrics CSV: bad or missing header");
    }
    std::vector<EpochMetrics> epochs;
    while (std::getline(is, line)) {
        if (line.empty()) continue;
        std::istringstream row(line);
        EpochMetrics e;
        char comma = 0;
        row >> e.epoch >> comma >> e.density >> comma >> e.train_loss >> comma >>
            e.val_loss >> comma >> e.val_accuracy;
        if (row.fail()) {
            throw std::invalid_argument("metrics CSV: malformed row: " + line);
        }
        epochs.push_back(e);
    }
    return epochs;
}

}  // namespace gtopk::train
