// In-memory training checkpoints for the self-healing runtime.
//
// Every rank snapshots {step, params, velocity, residual} at a fixed
// cadence. When a membership regroup fires, survivors roll back to the
// newest checkpoint ALL of them hold (synchronous SGD keeps ranks within
// one step of each other, but their newest snapshots can straddle a
// cadence boundary — hence the explicit agreement on the rollback step)
// and replay from there on the survivor world.
//
// params and velocity are replica-identical across ranks at any given
// step, so any survivor's copy is authoritative; the residual is the one
// RANK-LOCAL piece of optimizer state. A dead rank's residual — gradient
// mass it had accumulated but not yet transmitted — is lost with it, an
// accepted property of error-feedback recovery (see DESIGN.md §12).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

namespace gtopk::train {

struct Checkpoint {
    std::int64_t step = 0;  // state BEFORE this step's compute ran
    std::vector<float> params;
    std::vector<float> velocity;
    std::vector<float> residual;
};

/// Bounded in-memory checkpoint ring, owned by one rank's worker thread.
class CheckpointStore {
public:
    /// Snapshot every `interval` steps (step % interval == 0; step 0 is
    /// always due so a rollback target exists from the first iteration).
    /// `keep` bounds memory: older snapshots are dropped as new ones land.
    explicit CheckpointStore(std::int64_t interval, std::size_t keep = 4);

    bool due(std::int64_t step) const;
    void save(Checkpoint ckpt);

    /// Newest checkpoint with step <= `max_step` (nullopt if none kept).
    std::optional<Checkpoint> latest_at_or_before(std::int64_t max_step) const;
    /// Newest checkpoint's step, or -1 when empty.
    std::int64_t latest_step() const;
    /// Exact-step lookup (the agreed rollback point).
    std::optional<Checkpoint> at(std::int64_t step) const;
    /// Drop every snapshot newer than `step`. Called when a rollback
    /// rewinds past saved snapshots: the replay runs on a different
    /// (smaller) world, so snapshots beyond the rollback point belong to
    /// an abandoned timeline and must not survive as rollback targets for
    /// a later failure.
    void truncate_after(std::int64_t step);

    std::int64_t interval() const { return interval_; }
    std::size_t size() const { return ring_.size(); }

private:
    std::int64_t interval_;
    std::size_t keep_;
    std::deque<Checkpoint> ring_;  // ascending by step
};

}  // namespace gtopk::train
