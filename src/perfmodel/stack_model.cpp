#include "perfmodel/stack_model.hpp"

namespace gtopk::perfmodel {

StackModel StackModel::ideal() {
    StackModel s;
    s.sparse_net = comm::NetworkModel::one_gbps_ethernet();
    s.dense_net = comm::NetworkModel::one_gbps_ethernet();
    s.accum_cost_per_elem_s = 2e-9;  // a C++ scatter-add
    s.compress_scale = 0.02;         // an efficient top-k selection
    return s;
}

StackModel StackModel::calibrated() {
    StackModel s;
    // ~1.5 ms per MPI message (Python + MPI + PCIe-x1 staging), ~45 MB/s
    // effective for sparse TCP payloads.
    s.sparse_net = comm::NetworkModel{1.5e-3, 3.6e-7};
    // NCCL ring over TCP on the same hosts: bandwidth-bound, ~9 MB/s/elem
    // effective per ring step including both PCIe-x1 crossings.
    s.dense_net = comm::NetworkModel{1.0e-3, 4.5e-7};
    s.accum_cost_per_elem_s = 6e-7;
    s.compress_scale = 1.0;
    return s;
}

}  // namespace gtopk::perfmodel
