#include "perfmodel/overlap_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "collectives/cost_model.hpp"

namespace gtopk::perfmodel {

namespace {
std::uint64_t k_of(std::int64_t size, double density) {
    return static_cast<std::uint64_t>(
        std::max<double>(1.0, std::llround(density * static_cast<double>(size))));
}
}  // namespace

double layerwise_gtopk_comm_time_s(const comm::NetworkModel& net, int workers,
                                   std::span<const std::int64_t> segment_sizes,
                                   double density) {
    double total = 0.0;
    for (std::int64_t size : segment_sizes) {
        total += collectives::gtopk_allreduce_time_s(net, workers, k_of(size, density));
    }
    return total;
}

OverlapResult overlapped_pipeline(std::span<const double> comm_times_s,
                                  std::span<const double> ready_s,
                                  double t_forward_s, double t_backward_s,
                                  int channels) {
    if (comm_times_s.size() != ready_s.size()) {
        throw std::invalid_argument(
            "overlapped_pipeline: comm_times_s / ready_s size mismatch");
    }
    if (channels < 1) {
        throw std::invalid_argument("overlapped_pipeline: channels < 1");
    }

    OverlapResult result;
    if (comm_times_s.empty()) {
        result.iteration_s = t_forward_s + t_backward_s;
        result.hidden_fraction = 1.0;
        return result;
    }

    // Greedy channel assignment in issue order: each bucket starts when its
    // gradient is ready AND the earliest channel frees up. channels == 1
    // degenerates to the strict serialization chain
    // start_i = max(ready_i, end_{i-1}).
    std::vector<double> channel_free(static_cast<std::size_t>(channels), 0.0);
    double last_end = 0.0;
    double total_comm = 0.0;
    for (std::size_t i = 0; i < comm_times_s.size(); ++i) {
        auto earliest =
            std::min_element(channel_free.begin(), channel_free.end());
        const double start = std::max(ready_s[i], *earliest);
        const double end = start + comm_times_s[i];
        *earliest = end;
        last_end = std::max(last_end, end);
        total_comm += comm_times_s[i];
    }
    result.iteration_s = t_forward_s + std::max(t_backward_s, last_end);
    result.exposed_comm_s = std::max(0.0, last_end - t_backward_s);
    result.total_comm_s = total_comm;
    result.hidden_fraction =
        total_comm <= 0.0 ? 1.0 : 1.0 - result.exposed_comm_s / total_comm;
    return result;
}

OverlapResult overlapped_iteration(const comm::NetworkModel& net, int workers,
                                   std::span<const std::int64_t> segment_sizes,
                                   double density, double t_forward_s,
                                   double t_backward_s, int channels) {
    std::int64_t total_size = 0;
    for (std::int64_t s : segment_sizes) total_size += s;

    if (segment_sizes.empty() || total_size == 0) {
        OverlapResult result;
        result.iteration_s = t_forward_s + t_backward_s;
        result.hidden_fraction = 1.0;
        return result;
    }

    // Backward sweeps layers in reverse; segment l's gradient is ready
    // after the backward work of all deeper layers plus its own.
    std::vector<double> comm_times;
    std::vector<double> ready;
    comm_times.reserve(segment_sizes.size());
    ready.reserve(segment_sizes.size());
    double backward_done = 0.0;
    for (std::size_t i = segment_sizes.size(); i-- > 0;) {
        const double share = static_cast<double>(segment_sizes[i]) /
                             static_cast<double>(total_size);
        backward_done += share * t_backward_s;
        comm_times.push_back(collectives::gtopk_allreduce_time_s(
            net, workers, k_of(segment_sizes[i], density)));
        ready.push_back(backward_done);
    }
    return overlapped_pipeline(comm_times, ready, t_forward_s, t_backward_s,
                               channels);
}

}  // namespace gtopk::perfmodel
