#include "perfmodel/overlap_model.hpp"

#include <algorithm>
#include <cmath>

#include "collectives/cost_model.hpp"

namespace gtopk::perfmodel {

namespace {
std::uint64_t k_of(std::int64_t size, double density) {
    return static_cast<std::uint64_t>(
        std::max<double>(1.0, std::llround(density * static_cast<double>(size))));
}
}  // namespace

double layerwise_gtopk_comm_time_s(const comm::NetworkModel& net, int workers,
                                   std::span<const std::int64_t> segment_sizes,
                                   double density) {
    double total = 0.0;
    for (std::int64_t size : segment_sizes) {
        total += collectives::gtopk_allreduce_time_s(net, workers, k_of(size, density));
    }
    return total;
}

OverlapResult overlapped_iteration(const comm::NetworkModel& net, int workers,
                                   std::span<const std::int64_t> segment_sizes,
                                   double density, double t_forward_s,
                                   double t_backward_s) {
    std::int64_t total_size = 0;
    for (std::int64_t s : segment_sizes) total_size += s;

    OverlapResult result;
    if (segment_sizes.empty() || total_size == 0) {
        result.iteration_s = t_forward_s + t_backward_s;
        result.hidden_fraction = 1.0;
        return result;
    }

    // Backward sweeps layers in reverse; segment l's gradient is ready
    // after the backward work of all deeper layers plus its own.
    double backward_done = 0.0;
    double comm_end = 0.0;
    double total_comm = 0.0;
    for (std::size_t i = segment_sizes.size(); i-- > 0;) {
        const double share = static_cast<double>(segment_sizes[i]) /
                             static_cast<double>(total_size);
        backward_done += share * t_backward_s;
        const double comm =
            collectives::gtopk_allreduce_time_s(net, workers,
                                                k_of(segment_sizes[i], density));
        total_comm += comm;
        comm_end = std::max(comm_end, backward_done) + comm;
    }
    result.iteration_s = t_forward_s + std::max(t_backward_s, comm_end);
    result.exposed_comm_s = std::max(0.0, comm_end - t_backward_s);
    result.hidden_fraction =
        total_comm <= 0.0 ? 1.0 : 1.0 - result.exposed_comm_s / total_comm;
    return result;
}

}  // namespace gtopk::perfmodel
