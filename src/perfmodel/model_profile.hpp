// ModelProfile: the per-DNN constants needed to predict an S-SGD iteration
// on the paper's testbed (Table III models on Nvidia P102-100 GPUs).
//
// t_compute_s and t_compress_s are calibrated from the paper's own
// measurements (Table IV throughput, Fig. 10 scaling efficiency, Fig. 11
// breakdown) — see EXPERIMENTS.md for the derivation. t_compress_s is the
// cost of the local top-k selection on the full m-element gradient; the
// paper notes (Sec. IV-E) that GPU top-k selection was a significant,
// m-proportional overhead.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gtopk::perfmodel {

struct ModelProfile {
    std::string name;
    std::int64_t params = 0;       // m
    std::int64_t batch = 0;        // b, per worker
    double t_compute_s = 0.0;      // t_f + t_b per iteration
    double t_compress_s = 0.0;     // local sparsification per iteration
    double default_density = 1e-3; // rho used by the paper for this model
};

ModelProfile vgg16_profile();      // Cifar-10, m = 14.7M, b = 128
ModelProfile resnet20_profile();   // Cifar-10, m = 0.27M, b = 128
ModelProfile alexnet_profile();    // ImageNet, m = 61M,   b = 64
ModelProfile resnet50_profile();   // ImageNet, m = 25.6M, b = 256
ModelProfile lstm_ptb_profile();   // PTB,      m = 66M,   b = 100, rho = 5e-3

/// The four CNNs of Table IV / Fig. 10, in the paper's order.
std::vector<ModelProfile> table4_models();

/// Paper-reported throughput numbers (images/sec on 32 workers, Table IV)
/// for side-by-side printing in the bench output.
struct PaperThroughput {
    std::string name;
    double dense = 0, topk = 0, gtopk = 0;
};
std::vector<PaperThroughput> paper_table4();

}  // namespace gtopk::perfmodel
