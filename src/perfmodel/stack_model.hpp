// StackModel: effective communication constants of a software stack.
//
// Two instances matter:
//   ideal()       the bare alpha-beta network the paper measures in Fig. 8
//                 (alpha = 0.436 ms, beta = 3.6e-5 ms/element). The paper
//                 itself uses this for Fig. 9.
//   calibrated()  the end-to-end PyTorch + Horovod/NCCL + OpenMPI testbed.
//                 On the paper's hardware (PCIe x1 hosts, 1GbE, TCP), each
//                 hop carries framework overhead: we fit an effective
//                 per-message latency (~3 ms), an effective per-element
//                 time for sparse MPI traffic and for NCCL dense rings, and
//                 a per-element cost for TopKAllReduce's local O(kP)
//                 accumulation. Fitted against Table IV; see EXPERIMENTS.md.
#pragma once

#include "comm/network_model.hpp"

namespace gtopk::perfmodel {

struct StackModel {
    /// Effective network for the MPI sparse path (gTop-k tree, AllGather).
    comm::NetworkModel sparse_net;
    /// Effective network for the NCCL dense ring.
    comm::NetworkModel dense_net;
    /// Per-element cost of TopKAllReduce's local accumulation of P gathered
    /// k-sparse segments (Algorithm 1, lines 16-18), applied to k*P elems.
    double accum_cost_per_elem_s = 0.0;
    /// Scale on the profile's t_compress_s (1 = testbed GPU top-k; the
    /// ideal stack assumes an efficient selection at ~2% of that).
    double compress_scale = 1.0;

    static StackModel ideal();
    static StackModel calibrated();
};

}  // namespace gtopk::perfmodel
