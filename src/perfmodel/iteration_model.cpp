#include "perfmodel/iteration_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "collectives/cost_model.hpp"

namespace gtopk::perfmodel {

const char* algo_name(Algo algo) {
    switch (algo) {
        case Algo::Dense: return "Dense";
        case Algo::Topk: return "Top-k";
        case Algo::Gtopk: return "gTop-k";
    }
    return "?";
}

namespace {
std::uint64_t k_of(const ModelProfile& model, double density) {
    return static_cast<std::uint64_t>(
        std::max<double>(1.0, std::llround(density * static_cast<double>(model.params))));
}
}  // namespace

double comm_time_s(const ModelProfile& model, Algo algo, int workers, double density,
                   const StackModel& stack) {
    const std::uint64_t m = static_cast<std::uint64_t>(model.params);
    switch (algo) {
        case Algo::Dense:
            return collectives::dense_allreduce_time_s(stack.dense_net, workers, m);
        case Algo::Topk: {
            const std::uint64_t k = k_of(model, density);
            // AllGather of 2k elements plus the local O(kP) accumulation.
            return collectives::topk_allreduce_time_s(stack.sparse_net, workers, k) +
                   stack.accum_cost_per_elem_s * static_cast<double>(k) *
                       static_cast<double>(workers);
        }
        case Algo::Gtopk:
            return collectives::gtopk_allreduce_time_s(stack.sparse_net, workers,
                                                       k_of(model, density));
    }
    throw std::logic_error("unknown Algo");
}

double compress_time_s(const ModelProfile& model, Algo algo, const StackModel& stack) {
    return algo == Algo::Dense ? 0.0 : model.t_compress_s * stack.compress_scale;
}

Breakdown iteration_breakdown(const ModelProfile& model, Algo algo, int workers,
                              double density, const StackModel& stack) {
    Breakdown b;
    b.compute_s = model.t_compute_s;
    b.compress_s = compress_time_s(model, algo, stack);
    b.comm_s = comm_time_s(model, algo, workers, density, stack);
    return b;
}

double iteration_time_s(const ModelProfile& model, Algo algo, int workers,
                        double density, const StackModel& stack) {
    return iteration_breakdown(model, algo, workers, density, stack).total_s();
}

double scaling_efficiency(const ModelProfile& model, Algo algo, int workers,
                          double density, const StackModel& stack) {
    return model.t_compute_s / iteration_time_s(model, algo, workers, density, stack);
}

double throughput_sps(const ModelProfile& model, Algo algo, int workers,
                      double density, const StackModel& stack) {
    return static_cast<double>(workers) * static_cast<double>(model.batch) /
           iteration_time_s(model, algo, workers, density, stack);
}

}  // namespace gtopk::perfmodel
