// Layer-wise communication/computation overlap model — the paper's Sec. VII
// future work ("layer-wise sparsification such that the communication
// overheads can be further overlapped by the computation tasks"), in the
// style of wait-free backpropagation (the paper cites MG-WFBP [36]).
//
// Backward propagation produces layer gradients from the LAST layer to the
// FIRST, so a layer's aggregation can start while earlier layers are still
// computing. The model:
//   * segment l's gradient is ready when the backward pass has finished
//     layers L-1..l (backward time split proportionally to segment size);
//   * the fabric carries `channels` concurrent aggregations (1 = the
//     single-NIC serialization the paper assumes): each starts at
//     max(ready_l, earliest channel free) and runs for comm_l;
//   * iteration time = t_f + max(t_b, last aggregation end), since the
//     update can only apply when everything has been aggregated.
//
// overlapped_pipeline is the reconciled core shared with the runtime: it
// consumes per-bucket comm times and READY TIMES — the trainer's bucketer
// (train/bucketer.hpp) computes the same ready fractions it feeds into the
// virtual clock, so prediction and implementation share one definition of
// "ready" by construction. bench_overlap closes the loop by checking the
// trace-measured hidden fraction against this prediction.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "comm/network_model.hpp"

namespace gtopk::perfmodel {

/// Communication time of one layer-wise gTop-k round over all segments,
/// serialized (no overlap): sum over l of 2logP alpha + 4 k_l logP beta,
/// k_l = max(1, round(density * size_l)).
double layerwise_gtopk_comm_time_s(const comm::NetworkModel& net, int workers,
                                   std::span<const std::int64_t> segment_sizes,
                                   double density);

struct OverlapResult {
    double iteration_s = 0.0;       // t_f + max(t_b, pipeline completion)
    double exposed_comm_s = 0.0;    // communication NOT hidden by backprop
    double hidden_fraction = 0.0;   // 1 - exposed / total comm
    double total_comm_s = 0.0;      // sum of per-bucket comm times
};

/// Reconciled pipeline core: `comm_times_s[i]` and `ready_s[i]` describe
/// bucket i in backward ISSUE order (the order the trainer starts handles);
/// ready_s is measured from the start of the backward pass. `channels` is
/// the fabric's per-collective concurrency (1 = single-NIC serialization).
OverlapResult overlapped_pipeline(std::span<const double> comm_times_s,
                                  std::span<const double> ready_s,
                                  double t_forward_s, double t_backward_s,
                                  int channels = 1);

/// Segment-size front end: prices each segment's gTop-k with the alpha-beta
/// cost model and derives ready times from proportional backward shares,
/// then runs overlapped_pipeline. `segment_sizes` are in FORWARD layer
/// order (backward runs through them in reverse).
OverlapResult overlapped_iteration(const comm::NetworkModel& net, int workers,
                                   std::span<const std::int64_t> segment_sizes,
                                   double density, double t_forward_s,
                                   double t_backward_s, int channels = 1);

}  // namespace gtopk::perfmodel
