// Layer-wise communication/computation overlap model — the paper's Sec. VII
// future work ("layer-wise sparsification such that the communication
// overheads can be further overlapped by the computation tasks"), in the
// style of wait-free backpropagation (the paper cites MG-WFBP [36]).
//
// Backward propagation produces layer gradients from the LAST layer to the
// FIRST, so a layer's aggregation can start while earlier layers are still
// computing. The model:
//   * segment l's gradient is ready when the backward pass has finished
//     layers L-1..l (backward time split proportionally to segment size);
//   * the NIC serializes aggregations: each starts at
//     max(ready_l, previous aggregation's end) and runs for comm_l;
//   * iteration time = t_f + max(t_b, last aggregation end), since the
//     update can only apply when everything has been aggregated.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "comm/network_model.hpp"

namespace gtopk::perfmodel {

/// Communication time of one layer-wise gTop-k round over all segments,
/// serialized (no overlap): sum over l of 2logP alpha + 4 k_l logP beta,
/// k_l = max(1, round(density * size_l)).
double layerwise_gtopk_comm_time_s(const comm::NetworkModel& net, int workers,
                                   std::span<const std::int64_t> segment_sizes,
                                   double density);

struct OverlapResult {
    double iteration_s = 0.0;       // t_f + max(t_b, pipeline completion)
    double exposed_comm_s = 0.0;    // communication NOT hidden by backprop
    double hidden_fraction = 0.0;   // 1 - exposed / total comm
};

/// Pipeline simulation described above. `t_forward_s` and `t_backward_s`
/// are the full-model phase times; segment_sizes are in FORWARD layer
/// order (backward runs through them in reverse).
OverlapResult overlapped_iteration(const comm::NetworkModel& net, int workers,
                                   std::span<const std::int64_t> segment_sizes,
                                   double density, double t_forward_s,
                                   double t_backward_s);

}  // namespace gtopk::perfmodel
