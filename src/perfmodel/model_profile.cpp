#include "perfmodel/model_profile.hpp"

namespace gtopk::perfmodel {

ModelProfile vgg16_profile() {
    return {"VGG-16", 14'700'000, 128, 0.15, 0.85, 1e-3};
}

ModelProfile resnet20_profile() {
    return {"ResNet-20", 270'000, 128, 0.13, 0.015, 1e-3};
}

ModelProfile alexnet_profile() {
    return {"AlexNet", 61'000'000, 64, 0.45, 3.0, 1e-3};
}

ModelProfile resnet50_profile() {
    return {"ResNet-50", 25'600'000, 256, 4.8, 1.2, 1e-3};
}

ModelProfile lstm_ptb_profile() {
    return {"LSTM-PTB", 66'000'000, 100, 1.0, 3.2, 5e-3};
}

std::vector<ModelProfile> table4_models() {
    return {vgg16_profile(), resnet20_profile(), alexnet_profile(), resnet50_profile()};
}

std::vector<PaperThroughput> paper_table4() {
    return {
        {"VGG-16", 403, 2016, 3020},
        {"ResNet-20", 9212, 22272, 25280},
        {"AlexNet", 39, 296, 505},
        {"ResNet-50", 343, 978, 1251},
    };
}

}  // namespace gtopk::perfmodel
