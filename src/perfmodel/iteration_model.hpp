// Iteration-time model: composes a ModelProfile with a StackModel to
// predict t_iter, scaling efficiency (Eq. 4), throughput, and the Fig. 11
// compute/compress/communicate breakdown for each of the three S-SGD
// algorithms.
#pragma once

#include "perfmodel/model_profile.hpp"
#include "perfmodel/stack_model.hpp"

namespace gtopk::perfmodel {

enum class Algo { Dense, Topk, Gtopk };

const char* algo_name(Algo algo);

/// Communication time of one gradient aggregation (no compute/compress).
double comm_time_s(const ModelProfile& model, Algo algo, int workers, double density,
                   const StackModel& stack);

/// Local sparsification time (zero for the dense algorithm).
double compress_time_s(const ModelProfile& model, Algo algo, const StackModel& stack);

struct Breakdown {
    double compute_s = 0.0;
    double compress_s = 0.0;
    double comm_s = 0.0;
    double total_s() const { return compute_s + compress_s + comm_s; }
};

Breakdown iteration_breakdown(const ModelProfile& model, Algo algo, int workers,
                              double density, const StackModel& stack);

double iteration_time_s(const ModelProfile& model, Algo algo, int workers,
                        double density, const StackModel& stack);

/// Eq. 4: e = (t_f + t_b) / t_iter, in [0, 1].
double scaling_efficiency(const ModelProfile& model, Algo algo, int workers,
                          double density, const StackModel& stack);

/// Weak-scaling system throughput in samples/sec: P * b / t_iter.
double throughput_sps(const ModelProfile& model, Algo algo, int workers,
                      double density, const StackModel& stack);

}  // namespace gtopk::perfmodel
