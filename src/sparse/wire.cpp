#include "sparse/wire.hpp"

#include <cstdint>
#include <cstring>
#include <stdexcept>

namespace gtopk::sparse {

namespace {

struct Header {
    std::int64_t dense_size = 0;
    std::int64_t nnz = 0;
};

constexpr std::size_t kHeaderBytes = 2 * sizeof(std::int64_t);
constexpr std::size_t kEntryBytes = sizeof(std::int32_t) + sizeof(float);

/// Shared header/size validation for both deserialize flavors. Returns the
/// parsed header; throws std::invalid_argument on any inconsistency.
Header checked_header(std::span<const std::byte> bytes) {
    if (bytes.size() < kHeaderBytes) {
        throw std::invalid_argument("deserialize: truncated header");
    }
    Header h;
    std::memcpy(&h.dense_size, bytes.data(), sizeof h.dense_size);
    std::memcpy(&h.nnz, bytes.data() + sizeof h.dense_size, sizeof h.nnz);
    if (h.nnz < 0 || h.dense_size < 0 || h.nnz > h.dense_size) {
        throw std::invalid_argument("deserialize: bad header sizes");
    }
    // Derive the entry count from the actual payload size rather than
    // trusting the header: `wire_size_bytes(header_nnz)` could wrap for a
    // corrupt header (e.g. nnz + 2^61 makes nnz*8 overflow to a matching
    // size) and a huge resize would follow.
    const std::size_t payload = bytes.size() - kHeaderBytes;
    if (payload % kEntryBytes != 0 ||
        static_cast<std::uint64_t>(h.nnz) != payload / kEntryBytes) {
        throw std::invalid_argument("deserialize: size mismatch");
    }
    return h;
}

}  // namespace

std::size_t wire_size_bytes(std::size_t nnz) {
    return kHeaderBytes + nnz * kEntryBytes;
}

void serialize_into(const SparseGradient& g, std::vector<std::byte>& out) {
    out.resize(wire_size_bytes(g.nnz()));
    std::byte* p = out.data();
    const std::int64_t dense_size = g.dense_size;
    const std::int64_t nnz = static_cast<std::int64_t>(g.nnz());
    std::memcpy(p, &dense_size, sizeof dense_size);
    p += sizeof dense_size;
    std::memcpy(p, &nnz, sizeof nnz);
    p += sizeof nnz;
    if (nnz > 0) {
        std::memcpy(p, g.indices.data(), g.indices.size() * sizeof(std::int32_t));
        p += g.indices.size() * sizeof(std::int32_t);
        std::memcpy(p, g.values.data(), g.values.size() * sizeof(float));
    }
}

std::vector<std::byte> serialize(const SparseGradient& g) {
    std::vector<std::byte> out;
    serialize_into(g, out);
    return out;
}

SparseGradient deserialize(std::span<const std::byte> bytes) {
    const Header h = checked_header(bytes);
    const std::byte* p = bytes.data() + kHeaderBytes;
    SparseGradient g;
    g.dense_size = h.dense_size;
    g.indices.resize(static_cast<std::size_t>(h.nnz));
    g.values.resize(static_cast<std::size_t>(h.nnz));
    if (h.nnz > 0) {
        std::memcpy(g.indices.data(), p, g.indices.size() * sizeof(std::int32_t));
        p += g.indices.size() * sizeof(std::int32_t);
        std::memcpy(g.values.data(), p, g.values.size() * sizeof(float));
    }
    g.validate();
    return g;
}

SparseGradientView deserialize_view(std::span<const std::byte> bytes) {
    const Header h = checked_header(bytes);
    const std::size_t nnz = static_cast<std::size_t>(h.nnz);
    const std::byte* p = bytes.data() + kHeaderBytes;
    // The spans below alias the wire bytes as int32/float arrays. The bytes
    // were written by memcpy from exactly such arrays, so the object
    // representation is right; we only insist the pointer is aligned (true
    // for vector-backed payloads and 4-divisible block offsets).
    if (reinterpret_cast<std::uintptr_t>(p) % alignof(std::int32_t) != 0) {
        throw std::invalid_argument("deserialize_view: unaligned payload");
    }
    SparseGradientView v;
    v.dense_size = h.dense_size;
    if (nnz > 0) {
        const auto* idx = reinterpret_cast<const std::int32_t*>(p);
        const auto* val = reinterpret_cast<const float*>(p + nnz * sizeof(std::int32_t));
        v.indices = std::span<const std::int32_t>(idx, nnz);
        v.values = std::span<const float>(val, nnz);
        // Validate once, at the wire boundary: canonical (strictly
        // increasing) indices within [0, dense_size). Consumers then use
        // the spans without re-checking.
        std::int32_t prev = -1;
        for (std::size_t i = 0; i < nnz; ++i) {
            const std::int32_t ix = idx[i];
            if (ix <= prev || static_cast<std::int64_t>(ix) >= h.dense_size) {
                throw std::invalid_argument("deserialize_view: invalid indices");
            }
            prev = ix;
        }
    }
    return v;
}

void SparseGradientView::scatter_add(std::span<float> out) const {
    for (std::size_t i = 0; i < indices.size(); ++i) {
        out[static_cast<std::size_t>(indices[i])] += values[i];
    }
}

SparseGradient SparseGradientView::materialize() const {
    SparseGradient g;
    g.dense_size = dense_size;
    g.indices.assign(indices.begin(), indices.end());
    g.values.assign(values.begin(), values.end());
    return g;
}

}  // namespace gtopk::sparse
