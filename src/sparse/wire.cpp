#include "sparse/wire.hpp"

#include <cstdint>
#include <cstring>
#include <stdexcept>

namespace gtopk::sparse {

std::size_t wire_size_bytes(std::size_t nnz) {
    return 2 * sizeof(std::int64_t) + nnz * (sizeof(std::int32_t) + sizeof(float));
}

std::vector<std::byte> serialize(const SparseGradient& g) {
    std::vector<std::byte> out(wire_size_bytes(g.nnz()));
    std::byte* p = out.data();
    const std::int64_t dense_size = g.dense_size;
    const std::int64_t nnz = static_cast<std::int64_t>(g.nnz());
    std::memcpy(p, &dense_size, sizeof dense_size);
    p += sizeof dense_size;
    std::memcpy(p, &nnz, sizeof nnz);
    p += sizeof nnz;
    std::memcpy(p, g.indices.data(), g.indices.size() * sizeof(std::int32_t));
    p += g.indices.size() * sizeof(std::int32_t);
    std::memcpy(p, g.values.data(), g.values.size() * sizeof(float));
    return out;
}

SparseGradient deserialize(std::span<const std::byte> bytes) {
    if (bytes.size() < 2 * sizeof(std::int64_t)) {
        throw std::invalid_argument("deserialize: truncated header");
    }
    const std::byte* p = bytes.data();
    std::int64_t dense_size = 0;
    std::int64_t nnz = 0;
    std::memcpy(&dense_size, p, sizeof dense_size);
    p += sizeof dense_size;
    std::memcpy(&nnz, p, sizeof nnz);
    p += sizeof nnz;
    if (nnz < 0 || dense_size < 0 || nnz > dense_size) {
        throw std::invalid_argument("deserialize: bad header sizes");
    }
    // Derive the entry count from the actual payload size rather than
    // trusting the header: `wire_size_bytes(header_nnz)` could wrap for a
    // corrupt header (e.g. nnz + 2^61 makes nnz*8 overflow to a matching
    // size) and a huge resize would follow.
    const std::size_t payload = bytes.size() - 2 * sizeof(std::int64_t);
    constexpr std::size_t kEntry = sizeof(std::int32_t) + sizeof(float);
    if (payload % kEntry != 0 ||
        static_cast<std::uint64_t>(nnz) != payload / kEntry) {
        throw std::invalid_argument("deserialize: size mismatch");
    }
    SparseGradient g;
    g.dense_size = dense_size;
    g.indices.resize(static_cast<std::size_t>(nnz));
    g.values.resize(static_cast<std::size_t>(nnz));
    std::memcpy(g.indices.data(), p, g.indices.size() * sizeof(std::int32_t));
    p += g.indices.size() * sizeof(std::int32_t);
    std::memcpy(g.values.data(), p, g.values.size() * sizeof(float));
    g.validate();
    return g;
}

}  // namespace gtopk::sparse
