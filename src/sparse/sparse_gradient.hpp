// SparseGradient: the [V, I] pair the paper exchanges — k non-zero gradient
// values plus their indices into the flattened m-element model gradient.
//
// Invariants (checked by validate()):
//   * indices are strictly increasing (canonical form; makes merge O(k),
//     comparison deterministic, and serialization canonical),
//   * every index lies in [0, dense_size),
//   * values.size() == indices.size() <= dense_size.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace gtopk::sparse {

struct SparseGradient {
    std::int64_t dense_size = 0;
    std::vector<std::int32_t> indices;  // strictly increasing
    std::vector<float> values;

    std::size_t nnz() const { return indices.size(); }

    bool empty() const { return indices.empty(); }

    /// Throws std::invalid_argument when an invariant is broken.
    void validate() const;

    /// Materialize as a dense vector of dense_size floats.
    std::vector<float> to_dense() const;

    /// out[idx] += value for every stored entry; out.size() must equal
    /// dense_size.
    void scatter_add(std::span<float> out) const;

    /// out[idx] = value for every stored entry (others untouched).
    void scatter_assign(std::span<float> out) const;

    /// Multiply every stored value by s.
    void scale(float s);

    /// Sum of |v| over stored values — used by tests as a mass-conservation
    /// check for the residual bookkeeping.
    double l1_norm() const;

    bool operator==(const SparseGradient&) const = default;
};

/// Build from a dense vector, keeping only entries where keep[i] is true.
SparseGradient from_mask(std::span<const float> dense, std::span<const std::uint8_t> keep);

/// Canonical construction from unsorted (index, value) pairs (sorts and
/// verifies uniqueness).
SparseGradient from_pairs(std::int64_t dense_size, std::vector<std::int32_t> indices,
                          std::vector<float> values);

/// Element-wise sum of two sparse gradients over the same dense space;
/// result is canonical (indices merged, duplicates added).
SparseGradient add(const SparseGradient& a, const SparseGradient& b);

}  // namespace gtopk::sparse
