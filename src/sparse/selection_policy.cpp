#include "sparse/selection_policy.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gtopk::sparse {

const char* selection_policy_name(SelectionPolicy policy) {
    switch (policy) {
        case SelectionPolicy::ExactTopk: return "exact top-k";
        case SelectionPolicy::StaticThreshold: return "static threshold";
        case SelectionPolicy::AdaptiveThreshold: return "adaptive threshold";
        case SelectionPolicy::SampledTopk: return "sampled top-k";
    }
    return "?";
}

SparseGradient sampled_topk_select(std::span<const float> dense, std::size_t k,
                                   util::Xoshiro256& rng, double sample_fraction) {
    if (dense.empty() || k == 0) {
        SparseGradient g;
        g.dense_size = static_cast<std::int64_t>(dense.size());
        return g;
    }
    if (k >= dense.size()) return threshold_select(dense, 0.0f);

    // Sample magnitudes (with replacement — cheap and unbiased enough for a
    // quantile estimate), at least 4x the scaled-down k so the k-th order
    // statistic of the sample is meaningful.
    const std::size_t sample_size = std::max<std::size_t>(
        {64, static_cast<std::size_t>(sample_fraction * static_cast<double>(dense.size())),
         4 * std::max<std::size_t>(1, static_cast<std::size_t>(
                                          sample_fraction * static_cast<double>(k)))});
    std::vector<float> sample;
    sample.reserve(sample_size);
    for (std::size_t i = 0; i < sample_size; ++i) {
        const std::size_t idx =
            static_cast<std::size_t>(rng.next_below(dense.size()));
        sample.push_back(std::abs(dense[idx]));
    }
    // The sample-quantile matching density k/m.
    const double density = static_cast<double>(k) / static_cast<double>(dense.size());
    std::size_t rank = static_cast<std::size_t>(
        std::llround(density * static_cast<double>(sample.size())));
    rank = std::clamp<std::size_t>(rank, 1, sample.size());
    std::nth_element(sample.begin(),
                     sample.begin() + static_cast<std::ptrdiff_t>(rank - 1),
                     sample.end(), std::greater<float>());
    const float threshold = sample[rank - 1];
    return threshold_select(dense, threshold);
}

SparseGradient threshold_select(std::span<const float> dense, float threshold) {
    if (threshold < 0.0f) throw std::invalid_argument("threshold must be >= 0");
    SparseGradient g;
    g.dense_size = static_cast<std::int64_t>(dense.size());
    for (std::size_t i = 0; i < dense.size(); ++i) {
        if (std::abs(dense[i]) >= threshold) {
            g.indices.push_back(static_cast<std::int32_t>(i));
            g.values.push_back(dense[i]);
        }
    }
    return g;
}

AdaptiveThresholdSelector::AdaptiveThresholdSelector(double target_density,
                                                     float initial_threshold,
                                                     float adjust_rate)
    : target_density_(target_density),
      threshold_(initial_threshold),
      adjust_rate_(adjust_rate) {
    if (target_density <= 0.0 || target_density > 1.0) {
        throw std::invalid_argument("target_density must be in (0, 1]");
    }
    if (adjust_rate <= 1.0f) {
        throw std::invalid_argument("adjust_rate must exceed 1");
    }
    if (initial_threshold <= 0.0f) {
        throw std::invalid_argument("initial_threshold must be positive");
    }
}

SparseGradient AdaptiveThresholdSelector::select(std::span<const float> dense) {
    SparseGradient g = threshold_select(dense, threshold_);
    const double target =
        target_density_ * static_cast<double>(dense.size());
    const double got = static_cast<double>(g.nnz());
    // Damped multiplicative feedback. The survivor count is extremely
    // sensitive to the threshold in distribution tails (for a Gaussian,
    // d log nnz / d log thr ~ -thr^2), so the correction uses a small
    // exponent and is clamped to one adjust_rate step either way.
    if (got < 0.5) {
        threshold_ /= adjust_rate_;
    } else {
        const double correction = std::pow(got / target, 0.1);
        const double lo = 1.0 / static_cast<double>(adjust_rate_);
        const double hi = static_cast<double>(adjust_rate_);
        threshold_ *= static_cast<float>(std::clamp(correction, lo, hi));
    }
    return g;
}

}  // namespace gtopk::sparse
