#include "sparse/topk_merge.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "sparse/topk_select.hpp"

namespace gtopk::sparse {

SparseGradient sparse_topk(const SparseGradient& g, std::size_t k) {
    if (g.nnz() <= k) return g;
    // Order positions by the shared deterministic magnitude order.
    std::vector<std::size_t> order(g.nnz());
    std::iota(order.begin(), order.end(), 0);
    std::nth_element(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k - 1),
                     order.end(), [&](std::size_t a, std::size_t b) {
                         return magnitude_less(g.values[b], g.indices[b], g.values[a],
                                               g.indices[a]);
                     });
    order.resize(k);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return g.indices[a] < g.indices[b]; });
    SparseGradient out;
    out.dense_size = g.dense_size;
    out.indices.reserve(k);
    out.values.reserve(k);
    for (std::size_t pos : order) {
        out.indices.push_back(g.indices[pos]);
        out.values.push_back(g.values[pos]);
    }
    return out;
}

SparseGradient topk_merge(const SparseGradient& a, const SparseGradient& b,
                          std::size_t k) {
    return sparse_topk(add(a, b), k);
}

void topk_merge_into(SparseGradient& acc, std::int64_t b_dense_size,
                     std::span<const std::int32_t> b_indices,
                     std::span<const float> b_values, std::size_t k,
                     MergeScratch& scratch) {
    if (acc.dense_size != b_dense_size) {
        throw std::invalid_argument("topk_merge_into: dense_size mismatch");
    }
    auto& idx = scratch.idx;
    auto& val = scratch.val;
    idx.clear();
    val.clear();

    // Two-pointer merge of the two sorted index lists (duplicates summed),
    // exactly sparse::add but into reused scratch.
    const std::size_t an = acc.nnz();
    const std::size_t bn = b_indices.size();
    std::size_t i = 0, j = 0;
    while (i < an || j < bn) {
        if (j >= bn || (i < an && acc.indices[i] < b_indices[j])) {
            idx.push_back(acc.indices[i]);
            val.push_back(acc.values[i]);
            ++i;
        } else if (i >= an || b_indices[j] < acc.indices[i]) {
            idx.push_back(b_indices[j]);
            val.push_back(b_values[j]);
            ++j;
        } else {
            idx.push_back(acc.indices[i]);
            val.push_back(acc.values[i] + b_values[j]);
            ++i;
            ++j;
        }
    }

    const std::size_t n = idx.size();
    if (n <= k) {
        acc.indices.assign(idx.begin(), idx.end());
        acc.values.assign(val.begin(), val.end());
        return;
    }

    // Re-select the k largest under the shared total order. Merged indices
    // are unique, so the order is strict and the selected set unique —
    // nth_element's unspecified tie handling cannot change the result.
    auto& order = scratch.order;
    order.resize(n);
    std::iota(order.begin(), order.end(), 0);
    std::nth_element(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k - 1),
                     order.end(), [&](std::int32_t a, std::int32_t b) {
                         const auto pa = static_cast<std::size_t>(a);
                         const auto pb = static_cast<std::size_t>(b);
                         return magnitude_less(val[pb], idx[pb], val[pa], idx[pa]);
                     });
    std::sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k),
              [&](std::int32_t a, std::int32_t b) {
                  return idx[static_cast<std::size_t>(a)] <
                         idx[static_cast<std::size_t>(b)];
              });
    acc.indices.resize(k);
    acc.values.resize(k);
    for (std::size_t pos = 0; pos < k; ++pos) {
        const auto src = static_cast<std::size_t>(order[pos]);
        acc.indices[pos] = idx[src];
        acc.values[pos] = val[src];
    }
}

}  // namespace gtopk::sparse
