#include "sparse/topk_merge.hpp"

#include <algorithm>
#include <numeric>

#include "sparse/topk_select.hpp"

namespace gtopk::sparse {

SparseGradient sparse_topk(const SparseGradient& g, std::size_t k) {
    if (g.nnz() <= k) return g;
    // Order positions by the shared deterministic magnitude order.
    std::vector<std::size_t> order(g.nnz());
    std::iota(order.begin(), order.end(), 0);
    std::nth_element(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k - 1),
                     order.end(), [&](std::size_t a, std::size_t b) {
                         return magnitude_less(g.values[b], g.indices[b], g.values[a],
                                               g.indices[a]);
                     });
    order.resize(k);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return g.indices[a] < g.indices[b]; });
    SparseGradient out;
    out.dense_size = g.dense_size;
    out.indices.reserve(k);
    out.values.reserve(k);
    for (std::size_t pos : order) {
        out.indices.push_back(g.indices[pos]);
        out.values.push_back(g.values[pos]);
    }
    return out;
}

SparseGradient topk_merge(const SparseGradient& a, const SparseGradient& b,
                          std::size_t k) {
    return sparse_topk(add(a, b), k);
}

}  // namespace gtopk::sparse
