// Local sparsification policies — the related-work alternatives to exact
// top-k selection that the paper discusses (Sec. VI):
//
//   ExactTopk          the paper's choice: exactly k = rho*m entries.
//   StaticThreshold    Aji & Heafield [17]: keep |g| >= fixed threshold;
//                      nnz varies between iterations.
//   AdaptiveThreshold  Chen et al. [11] (AdaComp-flavored): maintain a
//                      per-call threshold estimate that is scaled up/down
//                      to track a target density without a full selection
//                      pass; cheaper than exact top-k, approximately-k
//                      output.
//
// All policies return canonical SparseGradients over the same dense space,
// so they are drop-in interchangeable for the gTop-k aggregation path
// (which tolerates variable nnz). Exact Top-k remains required for the
// AllGather-based TopKAllReduce, whose wire format assumes equal k.
#pragma once

#include <cstdint>
#include <span>

#include "sparse/sparse_gradient.hpp"
#include "util/rng.hpp"

namespace gtopk::sparse {

enum class SelectionPolicy { ExactTopk, StaticThreshold, AdaptiveThreshold, SampledTopk };

const char* selection_policy_name(SelectionPolicy policy);

/// Keep every entry with |value| >= threshold (ties included). Canonical.
SparseGradient threshold_select(std::span<const float> dense, float threshold);

/// Sampling-estimated top-k (the DGC trick for the expensive exact GPU
/// selection the paper laments in Sec. IV-E): estimate the k-th magnitude
/// from a random sample of the gradient, then threshold the full vector
/// with that estimate. One O(sample) selection + one O(m) scan instead of
/// an O(m) selection; returns APPROXIMATELY k entries (distribution tails
/// make the count noisy). Deterministic given `rng`.
SparseGradient sampled_topk_select(std::span<const float> dense, std::size_t k,
                                   util::Xoshiro256& rng,
                                   double sample_fraction = 0.01);

/// Stateful adaptive threshold tracking a target density. Each call selects
/// with the current threshold, then multiplicatively adjusts it toward the
/// target: too many survivors -> raise, too few -> lower. Converges to a
/// threshold yielding ~target_density*m entries on stationary gradient
/// distributions (tested).
class AdaptiveThresholdSelector {
public:
    AdaptiveThresholdSelector(double target_density, float initial_threshold = 1e-3f,
                              float adjust_rate = 1.3f);

    SparseGradient select(std::span<const float> dense);

    float threshold() const { return threshold_; }
    double target_density() const { return target_density_; }

private:
    double target_density_;
    float threshold_;
    float adjust_rate_;
};

}  // namespace gtopk::sparse
