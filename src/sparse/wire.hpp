// Wire format for SparseGradient, matching the paper's transfer unit of
// 2k elements: k int32 indices followed by k float32 values, prefixed by a
// small fixed header. The header makes the format self-describing so a
// receiver needs no out-of-band size agreement.
//
// Layout (little-endian, as used in-memory on the simulated cluster):
//   int64  dense_size
//   int64  nnz
//   int32  indices[nnz]
//   float  values[nnz]
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sparse/sparse_gradient.hpp"

namespace gtopk::sparse {

std::vector<std::byte> serialize(const SparseGradient& g);

/// Throws std::invalid_argument on truncated or corrupt input; the result
/// is validated (canonical indices, bounds).
SparseGradient deserialize(std::span<const std::byte> bytes);

/// Serialized size in bytes for a given nnz — used by cost accounting and
/// tests (16-byte header + 8 bytes per non-zero).
std::size_t wire_size_bytes(std::size_t nnz);

}  // namespace gtopk::sparse
