// Wire format for SparseGradient, matching the paper's transfer unit of
// 2k elements: k int32 indices followed by k float32 values, prefixed by a
// small fixed header. The header makes the format self-describing so a
// receiver needs no out-of-band size agreement.
//
// Layout (little-endian, as used in-memory on the simulated cluster):
//   int64  dense_size
//   int64  nnz
//   int32  indices[nnz]
//   float  values[nnz]
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sparse/sparse_gradient.hpp"

namespace gtopk::sparse {

std::vector<std::byte> serialize(const SparseGradient& g);

/// Serialize into an existing buffer (resized to the exact wire size);
/// steady-state callers reuse one buffer and never reallocate.
void serialize_into(const SparseGradient& g, std::vector<std::byte>& out);

/// Throws std::invalid_argument on truncated or corrupt input; the result
/// is validated (canonical indices, bounds).
SparseGradient deserialize(std::span<const std::byte> bytes);

/// Non-owning decoded view over serialized bytes: header fields plus index
/// and value spans aliasing the wire buffer directly. The buffer must
/// outlive the view. Produced by deserialize_view, which validates once
/// (header, sizes, canonical indices) and copies nothing.
struct SparseGradientView {
    std::int64_t dense_size = 0;
    std::span<const std::int32_t> indices;
    std::span<const float> values;

    std::size_t nnz() const { return indices.size(); }

    /// out[idx] += value for every entry; out.size() must be dense_size.
    void scatter_add(std::span<float> out) const;

    /// Owning copy (equivalent to deserialize of the same bytes).
    SparseGradient materialize() const;
};

/// Zero-copy counterpart of deserialize. Same validation and the same
/// std::invalid_argument on truncated/corrupt input; additionally requires
/// the payload to be 4-byte aligned (always true for whole message payload
/// buffers and for the equal-block offsets of the AllGather path).
SparseGradientView deserialize_view(std::span<const std::byte> bytes);

/// Serialized size in bytes for a given nnz — used by cost accounting and
/// tests (16-byte header + 8 bytes per non-zero).
std::size_t wire_size_bytes(std::size_t nnz);

}  // namespace gtopk::sparse
