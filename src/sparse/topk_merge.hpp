// The paper's Definition 1: the Top-k merge operator ⊤.
//
//   a ⊤ b = topk(a + b, k)
//
// i.e. element-wise sum of two k-sparse vectors followed by re-selection of
// the k largest-magnitude entries of the sum. The gTop-k tree reduction is
// a left fold of ⊤ across all workers' sparse gradients. ⊤ is commutative
// (sum and the deterministic selection order are symmetric) but NOT
// associative in general — tests document both properties.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "sparse/sparse_gradient.hpp"

namespace gtopk::sparse {

/// a ⊤ b with output sparsity k. Inputs may have any nnz (the tree uses
/// nnz == k throughout, but the fold for non-power-of-two worlds can see
/// fewer). Result is canonical with nnz == min(k, nnz(a + b)).
SparseGradient topk_merge(const SparseGradient& a, const SparseGradient& b,
                          std::size_t k);

/// Scratch for topk_merge_into: the merged index/value lists and the
/// selection permutation. One instance per worker; after the first merge
/// the vectors stay at ~2k capacity and the log2(P) rounds of a gTop-k
/// tree allocate nothing.
struct MergeScratch {
    std::vector<std::int32_t> idx;
    std::vector<float> val;
    std::vector<std::int32_t> order;
};

/// acc = acc ⊤ b, in place. `b` arrives as (dense_size, indices, values)
/// spans so a zero-copy SparseGradientView can be consumed directly off the
/// wire. Two-pointer merge of the sorted index lists into `scratch`, then
/// re-selection of the k largest under the shared deterministic order —
/// bit-identical to topk_merge(acc, b, k) (the order is total, so the
/// selected set is unique), with every temporary reused.
void topk_merge_into(SparseGradient& acc, std::int64_t b_dense_size,
                     std::span<const std::int32_t> b_indices,
                     std::span<const float> b_values, std::size_t k,
                     MergeScratch& scratch);

/// topk(g, k) for an already-sparse vector — used for re-sparsifying an
/// aggregated result (the "select k from k*P" variant of the paper's
/// Fig. 1, and Algorithm 2's global selection).
SparseGradient sparse_topk(const SparseGradient& g, std::size_t k);

}  // namespace gtopk::sparse
