// The paper's Definition 1: the Top-k merge operator ⊤.
//
//   a ⊤ b = topk(a + b, k)
//
// i.e. element-wise sum of two k-sparse vectors followed by re-selection of
// the k largest-magnitude entries of the sum. The gTop-k tree reduction is
// a left fold of ⊤ across all workers' sparse gradients. ⊤ is commutative
// (sum and the deterministic selection order are symmetric) but NOT
// associative in general — tests document both properties.
#pragma once

#include <cstddef>

#include "sparse/sparse_gradient.hpp"

namespace gtopk::sparse {

/// a ⊤ b with output sparsity k. Inputs may have any nnz (the tree uses
/// nnz == k throughout, but the fold for non-power-of-two worlds can see
/// fewer). Result is canonical with nnz == min(k, nnz(a + b)).
SparseGradient topk_merge(const SparseGradient& a, const SparseGradient& b,
                          std::size_t k);

/// topk(g, k) for an already-sparse vector — used for re-sparsifying an
/// aggregated result (the "select k from k*P" variant of the paper's
/// Fig. 1, and Algorithm 2's global selection).
SparseGradient sparse_topk(const SparseGradient& g, std::size_t k);

}  // namespace gtopk::sparse
