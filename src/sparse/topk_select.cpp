#include "sparse/topk_select.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>
#include <stdexcept>
#include <vector>

namespace gtopk::sparse {

namespace {

SparseGradient finalize(std::span<const float> dense,
                        std::vector<std::int32_t> picked) {
    std::sort(picked.begin(), picked.end());
    SparseGradient g;
    g.dense_size = static_cast<std::int64_t>(dense.size());
    g.indices = std::move(picked);
    g.values.reserve(g.indices.size());
    for (std::int32_t idx : g.indices) {
        g.values.push_back(dense[static_cast<std::size_t>(idx)]);
    }
    return g;
}

SparseGradient topk_nth_element(std::span<const float> dense, std::size_t k) {
    std::vector<std::int32_t> idx(dense.size());
    std::iota(idx.begin(), idx.end(), 0);
    auto greater = [&](std::int32_t a, std::int32_t b) {
        // "a before b" when a is strictly greater in the magnitude order.
        return magnitude_less(dense[static_cast<std::size_t>(b)], b,
                              dense[static_cast<std::size_t>(a)], a);
    };
    std::nth_element(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k - 1),
                     idx.end(), greater);
    idx.resize(k);
    return finalize(dense, std::move(idx));
}

SparseGradient topk_heap(std::span<const float> dense, std::size_t k) {
    // Min-heap of the current best k, keyed by the magnitude order, so the
    // weakest kept element sits on top and is evicted first.
    auto weaker = [&](std::int32_t a, std::int32_t b) {
        return magnitude_less(dense[static_cast<std::size_t>(b)], b,
                              dense[static_cast<std::size_t>(a)], a);
    };
    std::priority_queue<std::int32_t, std::vector<std::int32_t>, decltype(weaker)> heap(
        weaker);
    for (std::size_t i = 0; i < dense.size(); ++i) {
        const auto idx = static_cast<std::int32_t>(i);
        if (heap.size() < k) {
            heap.push(idx);
        } else if (magnitude_less(dense[static_cast<std::size_t>(heap.top())], heap.top(),
                                  dense[i], idx)) {
            heap.pop();
            heap.push(idx);
        }
    }
    std::vector<std::int32_t> picked;
    picked.reserve(heap.size());
    while (!heap.empty()) {
        picked.push_back(heap.top());
        heap.pop();
    }
    return finalize(dense, std::move(picked));
}

SparseGradient topk_full_sort(std::span<const float> dense, std::size_t k) {
    std::vector<std::int32_t> idx(dense.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::sort(idx.begin(), idx.end(), [&](std::int32_t a, std::int32_t b) {
        return magnitude_less(dense[static_cast<std::size_t>(b)], b,
                              dense[static_cast<std::size_t>(a)], a);
    });
    idx.resize(k);
    return finalize(dense, std::move(idx));
}

/// Fill `out` from the picked index positions `picked` (sorted in place).
void finalize_into(std::span<const float> dense, std::span<std::int32_t> picked,
                   SparseGradient& out) {
    std::sort(picked.begin(), picked.end());
    out.dense_size = static_cast<std::int64_t>(dense.size());
    out.indices.assign(picked.begin(), picked.end());
    out.values.clear();
    out.values.reserve(picked.size());
    for (std::int32_t idx : picked) {
        out.values.push_back(dense[static_cast<std::size_t>(idx)]);
    }
}

/// Deterministic strided-sample estimate of a magnitude cut that aims at
/// ~2k survivors (conservative: undershooting the true kth magnitude only
/// costs candidates, overshooting triggers the exact fallback). Returns a
/// non-positive cut when the estimate cannot be trusted.
float sampled_magnitude_cut(std::span<const float> dense, std::size_t k,
                            std::vector<float>& mags) {
    const std::size_t m = dense.size();
    const std::size_t sample_size = std::min(m, std::max<std::size_t>(2048, m / 128));
    const std::size_t step = m / sample_size;
    mags.clear();
    mags.reserve(sample_size);
    for (std::size_t i = 0, j = 0; j < sample_size; i += step, ++j) {
        mags.push_back(std::abs(dense[i]));
    }
    const double density = static_cast<double>(k) / static_cast<double>(m);
    auto rank = static_cast<std::size_t>(
        std::llround(2.0 * density * static_cast<double>(mags.size())));
    if (rank < 8) return -1.0f;  // too far into the tail of the sample
    rank = std::min(rank, mags.size());
    std::nth_element(mags.begin(), mags.begin() + static_cast<std::ptrdiff_t>(rank - 1),
                     mags.end(), std::greater<float>());
    return mags[rank - 1];
}

}  // namespace

SparseGradient topk_select(std::span<const float> dense, std::size_t k,
                           TopkStrategy strategy) {
    if (k >= dense.size()) {
        // Degenerate: keep everything.
        SparseGradient g;
        g.dense_size = static_cast<std::int64_t>(dense.size());
        g.indices.resize(dense.size());
        std::iota(g.indices.begin(), g.indices.end(), 0);
        g.values.assign(dense.begin(), dense.end());
        return g;
    }
    if (k == 0) {
        SparseGradient g;
        g.dense_size = static_cast<std::int64_t>(dense.size());
        return g;
    }
    switch (strategy) {
        case TopkStrategy::NthElement: return topk_nth_element(dense, k);
        case TopkStrategy::Heap: return topk_heap(dense, k);
        case TopkStrategy::FullSort: return topk_full_sort(dense, k);
    }
    throw std::logic_error("unknown TopkStrategy");
}

void topk_select_into(std::span<const float> dense, std::size_t k, TopkWorkspace& ws,
                      SparseGradient& out, const TopkOptions& options) {
    if (k >= dense.size()) {
        // Degenerate: keep everything.
        out.dense_size = static_cast<std::int64_t>(dense.size());
        out.indices.resize(dense.size());
        std::iota(out.indices.begin(), out.indices.end(), 0);
        out.values.assign(dense.begin(), dense.end());
        return;
    }
    if (k == 0) {
        out = SparseGradient{};
        out.dense_size = static_cast<std::int64_t>(dense.size());
        return;
    }
    if (options.strategy != TopkStrategy::NthElement) {
        // Heap / FullSort exist for the ablation benches; they keep their
        // one-shot implementations.
        out = topk_select(dense, k, options.strategy);
        return;
    }

    auto greater = [&](std::int32_t a, std::int32_t b) {
        return magnitude_less(dense[static_cast<std::size_t>(b)], b,
                              dense[static_cast<std::size_t>(a)], a);
    };

    if (options.sampled_prefilter && dense.size() >= kPrefilterMinDense &&
        k * 8 <= dense.size()) {
        const float cut = sampled_magnitude_cut(dense, k, ws.mags);
        if (cut > 0.0f) {
            ws.perm.clear();
            for (std::size_t i = 0; i < dense.size(); ++i) {
                const float v = dense[i];
                if ((v < 0 ? -v : v) >= cut) {
                    ws.perm.push_back(static_cast<std::int32_t>(i));
                }
            }
            // >= k candidates proves cut <= kth-largest magnitude, hence the
            // exact top-k set is contained in the candidates and selecting
            // from them under the same total order is exact. Fewer: the
            // estimate overshot; fall through to the full path.
            if (ws.perm.size() >= k) {
                std::nth_element(ws.perm.begin(),
                                 ws.perm.begin() + static_cast<std::ptrdiff_t>(k - 1),
                                 ws.perm.end(), greater);
                finalize_into(dense, std::span<std::int32_t>(ws.perm.data(), k), out);
                return;
            }
        }
    }

    ws.perm.resize(dense.size());
    std::iota(ws.perm.begin(), ws.perm.end(), 0);
    std::nth_element(ws.perm.begin(), ws.perm.begin() + static_cast<std::ptrdiff_t>(k - 1),
                     ws.perm.end(), greater);
    finalize_into(dense, std::span<std::int32_t>(ws.perm.data(), k), out);
}

SparseGradient topk_select(std::span<const float> dense, std::size_t k,
                           TopkWorkspace& ws, const TopkOptions& options) {
    SparseGradient out;
    topk_select_into(dense, k, ws, out, options);
    return out;
}

float kth_largest_magnitude(std::span<const float> dense, std::size_t k) {
    if (k == 0 || dense.empty()) return 0.0f;
    k = std::min(k, dense.size());
    std::vector<float> mags(dense.size());
    for (std::size_t i = 0; i < dense.size(); ++i) mags[i] = std::abs(dense[i]);
    std::nth_element(mags.begin(), mags.begin() + static_cast<std::ptrdiff_t>(k - 1),
                     mags.end(), std::greater<float>());
    return mags[k - 1];
}

float kth_largest_magnitude(std::span<const float> dense, std::size_t k,
                            TopkWorkspace& ws) {
    if (k == 0 || dense.empty()) return 0.0f;
    k = std::min(k, dense.size());
    ws.mags.resize(dense.size());
    for (std::size_t i = 0; i < dense.size(); ++i) ws.mags[i] = std::abs(dense[i]);
    std::nth_element(ws.mags.begin(),
                     ws.mags.begin() + static_cast<std::ptrdiff_t>(k - 1), ws.mags.end(),
                     std::greater<float>());
    return ws.mags[k - 1];
}

void zero_selected(std::span<float> dense, const SparseGradient& selected) {
    for (std::int32_t idx : selected.indices) {
        dense[static_cast<std::size_t>(idx)] = 0.0f;
    }
}

}  // namespace gtopk::sparse
