#include "sparse/topk_select.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>
#include <stdexcept>
#include <vector>

namespace gtopk::sparse {

namespace {

SparseGradient finalize(std::span<const float> dense,
                        std::vector<std::int32_t> picked) {
    std::sort(picked.begin(), picked.end());
    SparseGradient g;
    g.dense_size = static_cast<std::int64_t>(dense.size());
    g.indices = std::move(picked);
    g.values.reserve(g.indices.size());
    for (std::int32_t idx : g.indices) {
        g.values.push_back(dense[static_cast<std::size_t>(idx)]);
    }
    return g;
}

SparseGradient topk_nth_element(std::span<const float> dense, std::size_t k) {
    std::vector<std::int32_t> idx(dense.size());
    std::iota(idx.begin(), idx.end(), 0);
    auto greater = [&](std::int32_t a, std::int32_t b) {
        // "a before b" when a is strictly greater in the magnitude order.
        return magnitude_less(dense[static_cast<std::size_t>(b)], b,
                              dense[static_cast<std::size_t>(a)], a);
    };
    std::nth_element(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k - 1),
                     idx.end(), greater);
    idx.resize(k);
    return finalize(dense, std::move(idx));
}

SparseGradient topk_heap(std::span<const float> dense, std::size_t k) {
    // Min-heap of the current best k, keyed by the magnitude order, so the
    // weakest kept element sits on top and is evicted first.
    auto weaker = [&](std::int32_t a, std::int32_t b) {
        return magnitude_less(dense[static_cast<std::size_t>(b)], b,
                              dense[static_cast<std::size_t>(a)], a);
    };
    std::priority_queue<std::int32_t, std::vector<std::int32_t>, decltype(weaker)> heap(
        weaker);
    for (std::size_t i = 0; i < dense.size(); ++i) {
        const auto idx = static_cast<std::int32_t>(i);
        if (heap.size() < k) {
            heap.push(idx);
        } else if (magnitude_less(dense[static_cast<std::size_t>(heap.top())], heap.top(),
                                  dense[i], idx)) {
            heap.pop();
            heap.push(idx);
        }
    }
    std::vector<std::int32_t> picked;
    picked.reserve(heap.size());
    while (!heap.empty()) {
        picked.push_back(heap.top());
        heap.pop();
    }
    return finalize(dense, std::move(picked));
}

SparseGradient topk_full_sort(std::span<const float> dense, std::size_t k) {
    std::vector<std::int32_t> idx(dense.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::sort(idx.begin(), idx.end(), [&](std::int32_t a, std::int32_t b) {
        return magnitude_less(dense[static_cast<std::size_t>(b)], b,
                              dense[static_cast<std::size_t>(a)], a);
    });
    idx.resize(k);
    return finalize(dense, std::move(idx));
}

}  // namespace

SparseGradient topk_select(std::span<const float> dense, std::size_t k,
                           TopkStrategy strategy) {
    if (k >= dense.size()) {
        // Degenerate: keep everything.
        SparseGradient g;
        g.dense_size = static_cast<std::int64_t>(dense.size());
        g.indices.resize(dense.size());
        std::iota(g.indices.begin(), g.indices.end(), 0);
        g.values.assign(dense.begin(), dense.end());
        return g;
    }
    if (k == 0) {
        SparseGradient g;
        g.dense_size = static_cast<std::int64_t>(dense.size());
        return g;
    }
    switch (strategy) {
        case TopkStrategy::NthElement: return topk_nth_element(dense, k);
        case TopkStrategy::Heap: return topk_heap(dense, k);
        case TopkStrategy::FullSort: return topk_full_sort(dense, k);
    }
    throw std::logic_error("unknown TopkStrategy");
}

float kth_largest_magnitude(std::span<const float> dense, std::size_t k) {
    if (k == 0 || dense.empty()) return 0.0f;
    k = std::min(k, dense.size());
    std::vector<float> mags(dense.size());
    for (std::size_t i = 0; i < dense.size(); ++i) mags[i] = std::abs(dense[i]);
    std::nth_element(mags.begin(), mags.begin() + static_cast<std::ptrdiff_t>(k - 1),
                     mags.end(), std::greater<float>());
    return mags[k - 1];
}

void zero_selected(std::span<float> dense, const SparseGradient& selected) {
    for (std::int32_t idx : selected.indices) {
        dense[static_cast<std::size_t>(idx)] = 0.0f;
    }
}

}  // namespace gtopk::sparse
