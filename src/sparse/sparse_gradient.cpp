#include "sparse/sparse_gradient.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace gtopk::sparse {

void SparseGradient::validate() const {
    if (values.size() != indices.size()) {
        throw std::invalid_argument("SparseGradient: |V| != |I|");
    }
    if (static_cast<std::int64_t>(indices.size()) > dense_size) {
        throw std::invalid_argument("SparseGradient: nnz > dense_size");
    }
    for (std::size_t i = 0; i < indices.size(); ++i) {
        if (indices[i] < 0 || indices[i] >= dense_size) {
            throw std::invalid_argument("SparseGradient: index out of range");
        }
        if (i > 0 && indices[i] <= indices[i - 1]) {
            throw std::invalid_argument("SparseGradient: indices not strictly increasing");
        }
    }
}

std::vector<float> SparseGradient::to_dense() const {
    std::vector<float> out(static_cast<std::size_t>(dense_size), 0.0f);
    scatter_assign(out);
    return out;
}

void SparseGradient::scatter_add(std::span<float> out) const {
    for (std::size_t i = 0; i < indices.size(); ++i) {
        out[static_cast<std::size_t>(indices[i])] += values[i];
    }
}

void SparseGradient::scatter_assign(std::span<float> out) const {
    for (std::size_t i = 0; i < indices.size(); ++i) {
        out[static_cast<std::size_t>(indices[i])] = values[i];
    }
}

void SparseGradient::scale(float s) {
    for (float& v : values) v *= s;
}

double SparseGradient::l1_norm() const {
    double s = 0.0;
    for (float v : values) s += std::abs(v);
    return s;
}

SparseGradient from_mask(std::span<const float> dense,
                         std::span<const std::uint8_t> keep) {
    if (dense.size() != keep.size()) {
        throw std::invalid_argument("from_mask: size mismatch");
    }
    SparseGradient g;
    g.dense_size = static_cast<std::int64_t>(dense.size());
    for (std::size_t i = 0; i < dense.size(); ++i) {
        if (keep[i]) {
            g.indices.push_back(static_cast<std::int32_t>(i));
            g.values.push_back(dense[i]);
        }
    }
    return g;
}

SparseGradient from_pairs(std::int64_t dense_size, std::vector<std::int32_t> indices,
                          std::vector<float> values) {
    if (indices.size() != values.size()) {
        throw std::invalid_argument("from_pairs: |V| != |I|");
    }
    std::vector<std::size_t> order(indices.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return indices[a] < indices[b]; });
    SparseGradient g;
    g.dense_size = dense_size;
    g.indices.reserve(indices.size());
    g.values.reserve(values.size());
    for (std::size_t pos : order) {
        g.indices.push_back(indices[pos]);
        g.values.push_back(values[pos]);
    }
    g.validate();
    return g;
}

SparseGradient add(const SparseGradient& a, const SparseGradient& b) {
    if (a.dense_size != b.dense_size) {
        throw std::invalid_argument("add: dense_size mismatch");
    }
    SparseGradient out;
    out.dense_size = a.dense_size;
    out.indices.reserve(a.nnz() + b.nnz());
    out.values.reserve(a.nnz() + b.nnz());
    std::size_t i = 0, j = 0;
    while (i < a.nnz() || j < b.nnz()) {
        if (j >= b.nnz() || (i < a.nnz() && a.indices[i] < b.indices[j])) {
            out.indices.push_back(a.indices[i]);
            out.values.push_back(a.values[i]);
            ++i;
        } else if (i >= a.nnz() || b.indices[j] < a.indices[i]) {
            out.indices.push_back(b.indices[j]);
            out.values.push_back(b.values[j]);
            ++j;
        } else {
            out.indices.push_back(a.indices[i]);
            out.values.push_back(a.values[i] + b.values[j]);
            ++i;
            ++j;
        }
    }
    return out;
}

}  // namespace gtopk::sparse
