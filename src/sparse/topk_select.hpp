// Top-k selection: pick the k largest-magnitude entries of a dense vector
// (Algorithm 1 lines 5-7 of the paper).
//
// Ordering is total and deterministic: larger |value| first, ties broken by
// smaller index. Determinism matters because every worker must agree on the
// global selection bit-for-bit for the replicas to stay consistent.
//
// Three strategies are provided; they return identical results and are
// compared by bench_ablation_topk_select:
//   NthElement  introselect on an index permutation, O(m) expected
//   Heap        bounded min-heap of size k, O(m log k) — wins for k << m
//   FullSort    O(m log m) reference
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sparse/sparse_gradient.hpp"

namespace gtopk::sparse {

enum class TopkStrategy { NthElement, Heap, FullSort };

/// Comparator for the deterministic |value|-descending, index-ascending
/// total order shared by all strategies.
inline bool magnitude_less(float va, std::int32_t ia, float vb, std::int32_t ib) {
    const float ma = va < 0 ? -va : va;
    const float mb = vb < 0 ? -vb : vb;
    if (ma != mb) return ma < mb;
    return ia > ib;  // smaller index wins ties, so it is "greater"
}

/// Select min(k, nnz-meaningful) entries; exact zeros are still selectable
/// (the paper selects by threshold on |G|; we keep exact-k semantics).
/// Result is canonical (indices sorted ascending).
SparseGradient topk_select(std::span<const float> dense, std::size_t k,
                           TopkStrategy strategy = TopkStrategy::NthElement);

/// Scratch reused across selection calls: the m-entry permutation /
/// candidate buffer and the magnitude buffer that the one-shot API
/// reallocates every iteration. One workspace per worker thread; the
/// vectors grow to the largest m seen and stay there.
struct TopkWorkspace {
    std::vector<std::int32_t> perm;
    std::vector<float> mags;
};

struct TopkOptions {
    TopkStrategy strategy = TopkStrategy::NthElement;
    /// Sampled-threshold pre-filter (licensed by the magnitude-distribution
    /// observations of Shi et al., arXiv:1911.08772): estimate a
    /// conservative magnitude cut from a deterministic strided sample,
    /// collect the candidates >= cut, and run the exact selection on that
    /// (much smaller) set. Whenever the candidate set cannot be proven to
    /// contain the exact top-k (fewer than k candidates), the code falls
    /// back to the full exact path — so the selected set is ALWAYS
    /// bit-identical to the exact deterministic selection (invariant 6),
    /// on or off.
    bool sampled_prefilter = true;
};

/// Dense vectors below this size skip the pre-filter (the exact pass is
/// already cheap and the sample would be too small to trust).
inline constexpr std::size_t kPrefilterMinDense = 1 << 14;

/// Workspace-reusing selection; identical results to the one-shot overload
/// for every strategy/option combination.
SparseGradient topk_select(std::span<const float> dense, std::size_t k,
                           TopkWorkspace& ws, const TopkOptions& options = {});

/// Same, writing into `out` (indices/values capacity reused across calls).
void topk_select_into(std::span<const float> dense, std::size_t k, TopkWorkspace& ws,
                      SparseGradient& out, const TopkOptions& options = {});

/// The paper's threshold formulation (Line 5-6 of Algorithm 1): returns the
/// kth largest |value| of `dense` (0 when k == 0 or the vector is empty).
float kth_largest_magnitude(std::span<const float> dense, std::size_t k);

/// Workspace-reusing variant: the magnitude scratch lives in `ws` instead
/// of being a fresh m-float allocation per call.
float kth_largest_magnitude(std::span<const float> dense, std::size_t k,
                            TopkWorkspace& ws);

/// Zero out the selected entries of `dense` in place — the residual update
/// `G ⊙ ¬Mask` (Line 8 of Algorithm 1).
void zero_selected(std::span<float> dense, const SparseGradient& selected);

}  // namespace gtopk::sparse
