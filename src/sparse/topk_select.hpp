// Top-k selection: pick the k largest-magnitude entries of a dense vector
// (Algorithm 1 lines 5-7 of the paper).
//
// Ordering is total and deterministic: larger |value| first, ties broken by
// smaller index. Determinism matters because every worker must agree on the
// global selection bit-for-bit for the replicas to stay consistent.
//
// Three strategies are provided; they return identical results and are
// compared by bench_ablation_topk_select:
//   NthElement  introselect on an index permutation, O(m) expected
//   Heap        bounded min-heap of size k, O(m log k) — wins for k << m
//   FullSort    O(m log m) reference
#pragma once

#include <cstdint>
#include <span>

#include "sparse/sparse_gradient.hpp"

namespace gtopk::sparse {

enum class TopkStrategy { NthElement, Heap, FullSort };

/// Comparator for the deterministic |value|-descending, index-ascending
/// total order shared by all strategies.
inline bool magnitude_less(float va, std::int32_t ia, float vb, std::int32_t ib) {
    const float ma = va < 0 ? -va : va;
    const float mb = vb < 0 ? -vb : vb;
    if (ma != mb) return ma < mb;
    return ia > ib;  // smaller index wins ties, so it is "greater"
}

/// Select min(k, nnz-meaningful) entries; exact zeros are still selectable
/// (the paper selects by threshold on |G|; we keep exact-k semantics).
/// Result is canonical (indices sorted ascending).
SparseGradient topk_select(std::span<const float> dense, std::size_t k,
                           TopkStrategy strategy = TopkStrategy::NthElement);

/// The paper's threshold formulation (Line 5-6 of Algorithm 1): returns the
/// kth largest |value| of `dense` (0 when k == 0 or the vector is empty).
float kth_largest_magnitude(std::span<const float> dense, std::size_t k);

/// Zero out the selected entries of `dense` in place — the residual update
/// `G ⊙ ¬Mask` (Line 8 of Algorithm 1).
void zero_selected(std::span<float> dense, const SparseGradient& selected);

}  // namespace gtopk::sparse
