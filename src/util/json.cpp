#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdint>

namespace gtopk::util {

namespace {

struct Parser {
    std::string_view text;
    std::size_t pos = 0;

    [[noreturn]] void fail(const std::string& what) const {
        throw JsonError(what, pos);
    }

    void skip_ws() {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
                text[pos] == '\r')) {
            ++pos;
        }
    }

    char peek() {
        if (pos >= text.size()) fail("unexpected end of input");
        return text[pos];
    }

    void expect(char c) {
        if (peek() != c) fail(std::string("expected '") + c + "'");
        ++pos;
    }

    bool consume_literal(std::string_view lit) {
        if (text.substr(pos, lit.size()) != lit) return false;
        pos += lit.size();
        return true;
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        while (true) {
            if (pos >= text.size()) fail("unterminated string");
            const char c = text[pos++];
            if (c == '"') return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size()) fail("unterminated escape");
            const char e = text[pos++];
            switch (e) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    if (pos + 4 > text.size()) fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text[pos++];
                        code <<= 4;
                        if (h >= '0' && h <= '9') {
                            code |= static_cast<unsigned>(h - '0');
                        } else if (h >= 'a' && h <= 'f') {
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        } else if (h >= 'A' && h <= 'F') {
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        } else {
                            fail("bad \\u escape");
                        }
                    }
                    // Our writers only emit \u00XX control escapes; encode
                    // the general case as UTF-8 anyway.
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                }
                default: fail("unknown escape");
            }
        }
    }

    JsonValue parse_value();
};

}  // namespace

struct JsonValue::Builder {
    static JsonValue null() { return JsonValue{}; }
    static JsonValue boolean(bool b) {
        JsonValue v;
        v.type_ = Type::Bool;
        v.bool_ = b;
        return v;
    }
    static JsonValue number(double d) {
        JsonValue v;
        v.type_ = Type::Number;
        v.number_ = d;
        return v;
    }
    static JsonValue string(std::string s) {
        JsonValue v;
        v.type_ = Type::String;
        v.string_ = std::move(s);
        return v;
    }
    static JsonValue array(Array a) {
        JsonValue v;
        v.type_ = Type::Array;
        v.array_ = std::make_shared<Array>(std::move(a));
        return v;
    }
    static JsonValue object(Object o) {
        JsonValue v;
        v.type_ = Type::Object;
        v.object_ = std::make_shared<Object>(std::move(o));
        return v;
    }
};

namespace {

JsonValue Parser::parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') {
        ++pos;
        JsonValue::Object obj;
        skip_ws();
        if (peek() == '}') {
            ++pos;
            return JsonValue::Builder::object(std::move(obj));
        }
        while (true) {
            skip_ws();
            std::string key = parse_string();
            skip_ws();
            expect(':');
            obj.emplace(std::move(key), parse_value());
            skip_ws();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect('}');
            return JsonValue::Builder::object(std::move(obj));
        }
    }
    if (c == '[') {
        ++pos;
        JsonValue::Array arr;
        skip_ws();
        if (peek() == ']') {
            ++pos;
            return JsonValue::Builder::array(std::move(arr));
        }
        while (true) {
            arr.push_back(parse_value());
            skip_ws();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect(']');
            return JsonValue::Builder::array(std::move(arr));
        }
    }
    if (c == '"') return JsonValue::Builder::string(parse_string());
    if (consume_literal("null")) return JsonValue::Builder::null();
    if (consume_literal("true")) return JsonValue::Builder::boolean(true);
    if (consume_literal("false")) return JsonValue::Builder::boolean(false);
    if (c == '-' || (c >= '0' && c <= '9')) {
        const std::size_t start = pos;
        while (pos < text.size() &&
               (text[pos] == '-' || text[pos] == '+' || text[pos] == '.' ||
                text[pos] == 'e' || text[pos] == 'E' ||
                (text[pos] >= '0' && text[pos] <= '9'))) {
            ++pos;
        }
        double d = 0.0;
        const auto [end, ec] =
            std::from_chars(text.data() + start, text.data() + pos, d);
        if (ec != std::errc{} || end != text.data() + pos) fail("bad number");
        return JsonValue::Builder::number(d);
    }
    fail("unexpected character");
}

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
    Parser p{text};
    JsonValue v = p.parse_value();
    p.skip_ws();
    if (p.pos != text.size()) {
        throw JsonError("trailing content after document", p.pos);
    }
    return v;
}

bool JsonValue::as_bool() const {
    if (type_ != Type::Bool) throw JsonError("not a bool", 0);
    return bool_;
}

double JsonValue::as_number() const {
    if (type_ != Type::Number) throw JsonError("not a number", 0);
    return number_;
}

std::int64_t JsonValue::as_int() const {
    return static_cast<std::int64_t>(as_number());
}

const std::string& JsonValue::as_string() const {
    if (type_ != Type::String) throw JsonError("not a string", 0);
    return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
    if (type_ != Type::Array) throw JsonError("not an array", 0);
    return *array_;
}

const JsonValue::Object& JsonValue::as_object() const {
    if (type_ != Type::Object) throw JsonError("not an object", 0);
    return *object_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
    if (type_ != Type::Object) return nullptr;
    const auto it = object_->find(key);
    return it == object_->end() ? nullptr : &it->second;
}

double JsonValue::number_or(const std::string& key, double dflt) const {
    const JsonValue* v = find(key);
    return v && v->is_number() ? v->as_number() : dflt;
}

}  // namespace gtopk::util
