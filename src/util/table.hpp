// Plain-text table printer used by the bench harness to emit the paper's
// tables/figure series as aligned rows (easy to eyeball and to grep).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace gtopk::util {

class TextTable {
public:
    explicit TextTable(std::vector<std::string> header);

    void add_row(std::vector<std::string> row);

    /// Render with column alignment; header separated by a dashed rule.
    std::string to_string() const;
    void print(std::ostream& os) const;

    static std::string fmt(double v, int precision = 3);
    static std::string fmt_int(long long v);

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace gtopk::util
