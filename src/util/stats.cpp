#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gtopk::util {

void RunningStats::add(double x) {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
    if (n_ < 2) return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
    if (xs.size() != ys.size() || xs.size() < 2) {
        throw std::invalid_argument("linear_fit: need >= 2 paired samples");
    }
    const double n = static_cast<double>(xs.size());
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sx += xs[i];
        sy += ys[i];
        sxx += xs[i] * xs[i];
        sxy += xs[i] * ys[i];
    }
    const double denom = n * sxx - sx * sx;
    LinearFit fit;
    if (denom == 0.0) {
        fit.slope = 0.0;
        fit.intercept = sy / n;
        fit.r2 = 0.0;
        return fit;
    }
    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;

    double ss_res = 0, ss_tot = 0;
    const double ybar = sy / n;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        double pred = fit.intercept + fit.slope * xs[i];
        ss_res += (ys[i] - pred) * (ys[i] - pred);
        ss_tot += (ys[i] - ybar) * (ys[i] - ybar);
    }
    fit.r2 = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
    return fit;
}

double mean(std::span<const double> xs) {
    if (xs.empty()) return 0.0;
    double s = 0;
    for (double x : xs) s += x;
    return s / static_cast<double>(xs.size());
}

double percentile(std::vector<double> xs, double p) {
    if (xs.empty()) return 0.0;
    std::sort(xs.begin(), xs.end());
    double rank = (p / 100.0) * static_cast<double>(xs.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, xs.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace gtopk::util
