#include "util/rng.hpp"

#include <cmath>

namespace gtopk::util {

std::uint64_t splitmix64(std::uint64_t& state) {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace {
std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
}

Xoshiro256 Xoshiro256::fork(std::uint64_t stream_id) const {
    // Mix the child id with the parent state through splitmix so sibling
    // streams are decorrelated even for adjacent ids.
    std::uint64_t sm = s_[0] ^ (0x632be59bd9b4e019ULL * (stream_id + 1));
    Xoshiro256 child(0);
    for (auto& s : child.s_) s = splitmix64(sm);
    return child;
}

std::uint64_t Xoshiro256::next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double Xoshiro256::next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) {
    // Lemire-style rejection to avoid modulo bias.
    std::uint64_t threshold = (~bound + 1) % bound;
    for (;;) {
        std::uint64_t r = next_u64();
        if (r >= threshold) return r % bound;
    }
}

double Xoshiro256::next_gaussian() {
    // Box-Muller; draw until u1 is nonzero so log() is finite.
    double u1 = 0.0;
    do {
        u1 = next_double();
    } while (u1 <= 0.0);
    double u2 = next_double();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

float Xoshiro256::next_uniform(float lo, float hi) {
    return lo + static_cast<float>(next_double()) * (hi - lo);
}

}  // namespace gtopk::util
