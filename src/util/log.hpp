// Minimal leveled logger.
//
// A single process hosts many simulated workers (threads), so every sink
// write is serialized behind one mutex and each line is attributable:
// "[I 12:03:04.512 r03] message" — single-letter level, wall-clock
// timestamp, and the emitting thread's rank when one was set (the Cluster
// tags its worker threads). Log level is a process-wide knob; benches
// typically run at Warn to keep bench output machine-parsable.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace gtopk::util {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Process-wide minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Tag the calling thread with a worker rank (-1 = untagged, the default);
/// tagged threads get an "rNN" field in their log lines.
void set_thread_rank(int rank);
int thread_rank();

/// Formats "[<L> HH:MM:SS.mmm rNN] message" (rank field only on tagged
/// threads) — exposed so tests can pin the format.
std::string format_log_line(LogLevel level, const std::string& message, int rank);

/// Writes one formatted line to stderr, thread-safe.
void log_line(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}
}  // namespace detail

template <typename... Args>
void log(LogLevel level, Args&&... args) {
    if (level < log_level()) return;
    log_line(level, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_debug(Args&&... args) {
    log(LogLevel::Debug, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(Args&&... args) {
    log(LogLevel::Info, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(Args&&... args) {
    log(LogLevel::Warn, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(Args&&... args) {
    log(LogLevel::Error, std::forward<Args>(args)...);
}

}  // namespace gtopk::util
