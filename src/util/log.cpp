#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <iostream>

namespace gtopk::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Info};
std::mutex g_sink_mutex;
thread_local int t_rank = -1;

char level_letter(LogLevel level) {
    switch (level) {
        case LogLevel::Trace: return 'T';
        case LogLevel::Debug: return 'D';
        case LogLevel::Info: return 'I';
        case LogLevel::Warn: return 'W';
        case LogLevel::Error: return 'E';
        case LogLevel::Off: return '?';
    }
    return '?';
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_thread_rank(int rank) { t_rank = rank; }

int thread_rank() { return t_rank; }

std::string format_log_line(LogLevel level, const std::string& message, int rank) {
    const auto now = std::chrono::system_clock::now();
    const std::time_t secs = std::chrono::system_clock::to_time_t(now);
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        now.time_since_epoch())
                        .count() %
                    1000;
    std::tm tm{};
    localtime_r(&secs, &tm);

    char head[48];
    if (rank >= 0) {
        std::snprintf(head, sizeof(head), "[%c %02d:%02d:%02d.%03d r%02d] ",
                      level_letter(level), tm.tm_hour, tm.tm_min, tm.tm_sec,
                      static_cast<int>(ms), rank);
    } else {
        std::snprintf(head, sizeof(head), "[%c %02d:%02d:%02d.%03d] ",
                      level_letter(level), tm.tm_hour, tm.tm_min, tm.tm_sec,
                      static_cast<int>(ms));
    }
    return std::string(head) + message;
}

void log_line(LogLevel level, const std::string& message) {
    const std::string line = format_log_line(level, message, t_rank);
    std::lock_guard<std::mutex> lock(g_sink_mutex);
    std::cerr << line << "\n";
}

}  // namespace gtopk::util
