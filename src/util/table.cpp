#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace gtopk::util {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
    row.resize(header_.size());
    rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    std::ostringstream oss;
    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            oss << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
        }
        oss << "\n";
    };
    emit(header_);
    std::size_t total = 0;
    for (auto w : widths) total += w + 2;
    oss << std::string(total, '-') << "\n";
    for (const auto& row : rows_) emit(row);
    return oss.str();
}

void TextTable::print(std::ostream& os) const { os << to_string(); }

std::string TextTable::fmt(double v, int precision) {
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

std::string TextTable::fmt_int(long long v) { return std::to_string(v); }

}  // namespace gtopk::util
