// Minimal JSON value + recursive-descent parser, no dependencies — just
// enough for the observability tooling (gtopktop, the telemetry tests) to
// read back what the exporters write: objects, arrays, strings with the
// escapes our writers emit, and doubles. Not a general-purpose validator;
// it accepts all JSON this repo produces and rejects garbage with a typed
// error naming the offset.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace gtopk::util {

class JsonError : public std::runtime_error {
public:
    JsonError(const std::string& what, std::size_t offset)
        : std::runtime_error(what + " at offset " + std::to_string(offset)),
          offset_(offset) {}
    std::size_t offset() const { return offset_; }

private:
    std::size_t offset_;
};

class JsonValue {
public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    using Array = std::vector<JsonValue>;
    using Object = std::map<std::string, JsonValue>;

    JsonValue() = default;  // null

    /// Parse one complete JSON document (throws JsonError).
    static JsonValue parse(std::string_view text);

    Type type() const { return type_; }
    bool is_null() const { return type_ == Type::Null; }
    bool is_object() const { return type_ == Type::Object; }
    bool is_array() const { return type_ == Type::Array; }
    bool is_number() const { return type_ == Type::Number; }
    bool is_string() const { return type_ == Type::String; }
    bool is_bool() const { return type_ == Type::Bool; }

    /// Typed accessors; throw JsonError(offset 0) on type mismatch.
    bool as_bool() const;
    double as_number() const;
    std::int64_t as_int() const;
    const std::string& as_string() const;
    const Array& as_array() const;
    const Object& as_object() const;

    /// Object member lookup; nullptr when absent or not an object.
    const JsonValue* find(const std::string& key) const;
    /// Member value with default (numbers only).
    double number_or(const std::string& key, double dflt) const;

    /// Internal construction hook for the parser (json.cpp only).
    struct Builder;

private:
    Type type_ = Type::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::shared_ptr<Array> array_;
    std::shared_ptr<Object> object_;
};

}  // namespace gtopk::util
