// Small statistics helpers shared by benches and tests: running moments,
// linear regression (used to fit the alpha-beta model exactly like the
// paper's Fig. 8), and simple summaries.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace gtopk::util {

/// Online mean/variance (Welford).
class RunningStats {
public:
    void add(double x);
    std::size_t count() const { return n_; }
    double mean() const { return mean_; }
    /// Sample variance (n-1 denominator); 0 if fewer than two samples.
    double variance() const;
    double stddev() const;
    double min() const { return min_; }
    double max() const { return max_; }

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

struct LinearFit {
    double intercept = 0.0;  // "alpha" when fitting transfer time vs size
    double slope = 0.0;      // "beta"
    double r2 = 0.0;         // coefficient of determination
};

/// Ordinary least squares y = intercept + slope * x.
/// Requires xs.size() == ys.size() >= 2.
LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

double mean(std::span<const double> xs);
double percentile(std::vector<double> xs, double p);  // p in [0,100]

}  // namespace gtopk::util
