// Deterministic pseudo-random number generation.
//
// Training reproducibility demands that every worker derive its stream from
// (seed, rank, purpose) so runs are bit-identical across repetitions and
// independent of thread scheduling. We use xoshiro256** seeded via
// splitmix64, both self-implemented so results do not depend on the standard
// library's unspecified distributions.
#pragma once

#include <cstdint>
#include <vector>

namespace gtopk::util {

/// splitmix64 step; used to expand a single 64-bit seed into a full state.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** — fast, high-quality 64-bit PRNG with explicit state.
class Xoshiro256 {
public:
    explicit Xoshiro256(std::uint64_t seed);

    /// Derive an independent stream, e.g. `Xoshiro256(seed).fork(rank)`.
    Xoshiro256 fork(std::uint64_t stream_id) const;

    std::uint64_t next_u64();

    /// Uniform in [0, 1).
    double next_double();

    /// Uniform in [0, bound), bound > 0 (unbiased via rejection).
    std::uint64_t next_below(std::uint64_t bound);

    /// Standard normal via Box-Muller (stateless between calls; no caching
    /// so forked streams never share hidden state).
    double next_gaussian();

    /// Uniform float in [lo, hi).
    float next_uniform(float lo, float hi);

    // UniformRandomBitGenerator interface so <algorithm> shuffles work.
    using result_type = std::uint64_t;
    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~std::uint64_t{0}; }
    result_type operator()() { return next_u64(); }

private:
    std::uint64_t s_[4];
};

/// Fisher-Yates shuffle with our deterministic generator.
template <typename T>
void shuffle(std::vector<T>& v, Xoshiro256& rng) {
    for (std::size_t i = v.size(); i > 1; --i) {
        std::size_t j = static_cast<std::size_t>(rng.next_below(i));
        std::swap(v[i - 1], v[j]);
    }
}

}  // namespace gtopk::util
