#include "collectives/schedule.hpp"

#include <cassert>
#include <stdexcept>

namespace gtopk::collectives {

int ilog2_floor(int x) {
    assert(x >= 1);
    int l = 0;
    while (x > 1) {
        x >>= 1;
        ++l;
    }
    return l;
}

int ilog2_ceil(int x) {
    assert(x >= 1);
    int l = ilog2_floor(x);
    return (1 << l) == x ? l : l + 1;
}

bool is_power_of_two(int x) { return x > 0 && (x & (x - 1)) == 0; }

DisseminationStep dissemination_step(int rank, int round, int world) {
    const int d = 1 << round;
    DisseminationStep s;
    s.send_to = (rank + d) % world;
    s.recv_from = (rank - d % world + world) % world;
    return s;
}

BinomialBcastPlan binomial_bcast_plan(int rank, int root, int world) {
    if (world <= 0) throw std::invalid_argument("world must be positive");
    // Work in the rotated space where root is rank 0.
    const int vrank = (rank - root + world) % world;
    const int rounds = ilog2_ceil(world);
    BinomialBcastPlan plan;
    if (vrank != 0) {
        // The receive round is the position of vrank's highest set bit:
        // rank v receives from v - 2^h at round h where 2^h <= v < 2^(h+1).
        int h = ilog2_floor(vrank);
        plan.recv_round = h;
        plan.recv_from = ((vrank - (1 << h)) + root) % world;
    }
    // After holding the data, send to vrank + 2^r for each later round r
    // while the destination is in range.
    const int first_active = (vrank == 0) ? 0 : plan.recv_round + 1;
    for (int r = first_active; r < rounds; ++r) {
        const int vdst = vrank + (1 << r);
        if (vdst < world) {
            plan.sends.emplace_back(r, (vdst + root) % world);
        }
    }
    return plan;
}

RingStep ring_neighbors(int rank, int world) {
    RingStep s;
    s.send_to = (rank + 1) % world;
    s.recv_from = (rank - 1 + world) % world;
    return s;
}

std::vector<std::size_t> ring_block_offsets(std::size_t n, int world) {
    // First (n % world) blocks get one extra element, like MPI block
    // decompositions; empty blocks are fine (n < world).
    std::vector<std::size_t> offsets(static_cast<std::size_t>(world) + 1, 0);
    const std::size_t base = n / static_cast<std::size_t>(world);
    const std::size_t extra = n % static_cast<std::size_t>(world);
    for (int b = 0; b < world; ++b) {
        const std::size_t len = base + (static_cast<std::size_t>(b) < extra ? 1 : 0);
        offsets[static_cast<std::size_t>(b) + 1] = offsets[static_cast<std::size_t>(b)] + len;
    }
    return offsets;
}

TreeMergeStep tree_merge_step(int rank, int round, int world) {
    if (!is_power_of_two(world)) {
        throw std::invalid_argument("tree_merge_step requires power-of-two world");
    }
    TreeMergeStep s;
    const int stride = 1 << round;
    if (rank % stride != 0) return s;  // already folded in an earlier round
    const int pos = rank >> round;
    if (pos % 2 == 0) {
        const int peer = rank + stride;
        if (peer < world) {
            s.role = TreeMergeStep::Role::Receive;
            s.peer = peer;
        }
    } else {
        s.role = TreeMergeStep::Role::Send;
        s.peer = rank - stride;
    }
    return s;
}

int tree_merge_rounds(int world) { return ilog2_ceil(world); }

}  // namespace gtopk::collectives
