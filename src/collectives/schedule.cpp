#include "collectives/schedule.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

#include "comm/tags.hpp"

namespace gtopk::collectives {

int ilog2_floor(int x) {
    assert(x >= 1);
    int l = 0;
    while (x > 1) {
        x >>= 1;
        ++l;
    }
    return l;
}

int ilog2_ceil(int x) {
    assert(x >= 1);
    int l = ilog2_floor(x);
    return (1 << l) == x ? l : l + 1;
}

bool is_power_of_two(int x) { return x > 0 && (x & (x - 1)) == 0; }

DisseminationStep dissemination_step(int rank, int round, int world) {
    const int d = 1 << round;
    DisseminationStep s;
    s.send_to = (rank + d) % world;
    s.recv_from = (rank - d % world + world) % world;
    return s;
}

BinomialBcastPlan binomial_bcast_plan(int rank, int root, int world) {
    if (world <= 0) throw std::invalid_argument("world must be positive");
    // Work in the rotated space where root is rank 0.
    const int vrank = (rank - root + world) % world;
    const int rounds = ilog2_ceil(world);
    BinomialBcastPlan plan;
    if (vrank != 0) {
        // The receive round is the position of vrank's highest set bit:
        // rank v receives from v - 2^h at round h where 2^h <= v < 2^(h+1).
        int h = ilog2_floor(vrank);
        plan.recv_round = h;
        plan.recv_from = ((vrank - (1 << h)) + root) % world;
    }
    // After holding the data, send to vrank + 2^r for each later round r
    // while the destination is in range.
    const int first_active = (vrank == 0) ? 0 : plan.recv_round + 1;
    for (int r = first_active; r < rounds; ++r) {
        const int vdst = vrank + (1 << r);
        if (vdst < world) {
            plan.sends.emplace_back(r, (vdst + root) % world);
        }
    }
    return plan;
}

RingStep ring_neighbors(int rank, int world) {
    RingStep s;
    s.send_to = (rank + 1) % world;
    s.recv_from = (rank - 1 + world) % world;
    return s;
}

std::vector<std::size_t> ring_block_offsets(std::size_t n, int world) {
    // First (n % world) blocks get one extra element, like MPI block
    // decompositions; empty blocks are fine (n < world).
    std::vector<std::size_t> offsets(static_cast<std::size_t>(world) + 1, 0);
    const std::size_t base = n / static_cast<std::size_t>(world);
    const std::size_t extra = n % static_cast<std::size_t>(world);
    for (int b = 0; b < world; ++b) {
        const std::size_t len = base + (static_cast<std::size_t>(b) < extra ? 1 : 0);
        offsets[static_cast<std::size_t>(b) + 1] = offsets[static_cast<std::size_t>(b)] + len;
    }
    return offsets;
}

TreeMergeStep tree_merge_step(int rank, int round, int world) {
    if (!is_power_of_two(world)) {
        throw std::invalid_argument("tree_merge_step requires power-of-two world");
    }
    TreeMergeStep s;
    const int stride = 1 << round;
    if (rank % stride != 0) return s;  // already folded in an earlier round
    const int pos = rank >> round;
    if (pos % 2 == 0) {
        const int peer = rank + stride;
        if (peer < world) {
            s.role = TreeMergeStep::Role::Receive;
            s.peer = peer;
        }
    } else {
        s.role = TreeMergeStep::Role::Send;
        s.peer = rank - stride;
    }
    return s;
}

int tree_merge_rounds(int world) { return ilog2_ceil(world); }

// ---------------------------------------------------------------------------
// Schedule IR generators
// ---------------------------------------------------------------------------

namespace {

using Kind = CommOp::Kind;

Schedule make_schedule(std::string proto, int world, int tag_count) {
    if (world <= 0) throw std::invalid_argument("world must be positive");
    Schedule s;
    s.proto = std::move(proto);
    s.world = world;
    s.tag_count = tag_count;
    s.ranks.resize(static_cast<std::size_t>(world));
    return s;
}

void push_op(Schedule& s, int rank, Kind kind, int peer, int tag_offset, int round,
             int phase, std::int64_t bytes, std::int64_t a = 0, std::int64_t b = 0) {
    CommOp op;
    op.kind = kind;
    op.peer = peer;
    op.tag_offset = tag_offset;
    op.round = round;
    op.phase = phase;
    op.bytes = bytes;
    op.a = a;
    op.b = b;
    s.ranks[static_cast<std::size_t>(rank)].push_back(op);
}

/// elems * elem_bytes, propagating the variable marker.
std::int64_t sized(std::int64_t elems, std::int64_t elem_bytes) {
    if (elems == kVariableBytes || elem_bytes == kVariableBytes) return kVariableBytes;
    return elems * elem_bytes;
}

}  // namespace

Schedule barrier_schedule(int world) {
    if (world == 1) return make_schedule("barrier", world, 0);
    const int rounds = ilog2_ceil(world);
    Schedule s = make_schedule("barrier", world, rounds);
    for (int rank = 0; rank < world; ++rank) {
        for (int r = 0; r < rounds; ++r) {
            const DisseminationStep step = dissemination_step(rank, r, world);
            push_op(s, rank, Kind::Send, step.send_to, r, r, 0, 1);
            push_op(s, rank, Kind::Recv, step.recv_from, r, r, 0, 1);
        }
    }
    return s;
}

Schedule broadcast_schedule(int world, int root, std::int64_t bytes, BcastAlgo algo) {
    if (root < 0 || root >= world) throw std::invalid_argument("broadcast: bad root");
    if (world == 1) {
        return make_schedule(
            algo == BcastAlgo::FlatTree ? "broadcast.flat" : "broadcast.binomial",
            world, 0);
    }
    if (algo == BcastAlgo::FlatTree) {
        Schedule s = make_schedule("broadcast.flat", world, 1);
        for (int dst = 0; dst < world; ++dst) {
            if (dst == root) continue;
            push_op(s, root, Kind::Send, dst, 0, 0, 0, bytes);
            push_op(s, dst, Kind::Recv, root, 0, 0, 0, bytes);
        }
        return s;
    }
    const int rounds = ilog2_ceil(world);
    Schedule s = make_schedule("broadcast.binomial", world, rounds);
    for (int rank = 0; rank < world; ++rank) {
        const BinomialBcastPlan plan = binomial_bcast_plan(rank, root, world);
        if (plan.recv_round >= 0) {
            push_op(s, rank, Kind::Recv, plan.recv_from, plan.recv_round,
                    plan.recv_round, 0, bytes);
        }
        for (const auto& [round, dst] : plan.sends) {
            push_op(s, rank, Kind::Send, dst, round, round, 0, bytes);
        }
    }
    return s;
}

Schedule reduce_schedule(int world, int root, std::int64_t bytes) {
    if (root < 0 || root >= world) throw std::invalid_argument("reduce: bad root");
    if (world == 1) return make_schedule("reduce.binomial", world, 0);
    const int rounds = ilog2_ceil(world);
    Schedule s = make_schedule("reduce.binomial", world, rounds);
    // The broadcast tree run backwards in the rotated space where root is 0:
    // at round r, virtual ranks with bit r set ship their accumulator to
    // vrank - 2^r and drop out.
    for (int rank = 0; rank < world; ++rank) {
        const int vrank = (rank - root + world) % world;
        for (int r = 0; r < rounds; ++r) {
            const int bit = 1 << r;
            if (vrank & bit) {
                const int vdst = vrank - bit;
                push_op(s, rank, Kind::Send, (vdst + root) % world, r, r, 0, bytes);
                break;  // this rank's contribution has been handed off
            }
            const int vsrc = vrank + bit;
            if (vsrc < world && (vrank & (bit - 1)) == 0) {
                push_op(s, rank, Kind::Recv, (vsrc + root) % world, r, r, 0, bytes);
            }
        }
    }
    return s;
}

Schedule allreduce_ring_schedule(int world, std::int64_t elems,
                                 std::int64_t elem_bytes) {
    if (elems < 0) throw std::invalid_argument("allreduce_ring: negative size");
    if (world == 1) return make_schedule("allreduce.ring", world, 0);
    const int steps = world - 1;
    Schedule s = make_schedule("allreduce.ring", world, 2 * steps);
    const auto offsets = ring_block_offsets(static_cast<std::size_t>(elems), world);
    auto block_lo = [&](int b) {
        b = ((b % world) + world) % world;
        return static_cast<std::int64_t>(offsets[static_cast<std::size_t>(b)]);
    };
    auto block_hi = [&](int b) {
        b = ((b % world) + world) % world;
        return static_cast<std::int64_t>(offsets[static_cast<std::size_t>(b) + 1]);
    };
    for (int rank = 0; rank < world; ++rank) {
        const RingStep ring = ring_neighbors(rank, world);
        // Phase 0 — reduce-scatter: recv combiner adds into [a, b).
        for (int st = 0; st < steps; ++st) {
            const int send_block = rank - st;
            const int recv_block = rank - st - 1;
            push_op(s, rank, Kind::Send, ring.send_to, st, st, 0,
                    sized(block_hi(send_block) - block_lo(send_block), elem_bytes),
                    block_lo(send_block), block_hi(send_block));
            push_op(s, rank, Kind::Recv, ring.recv_from, st, st, 0,
                    sized(block_hi(recv_block) - block_lo(recv_block), elem_bytes),
                    block_lo(recv_block), block_hi(recv_block));
        }
        // Phase 1 — allgather: recv combiner copies into [a, b).
        for (int st = 0; st < steps; ++st) {
            const int send_block = rank + 1 - st;
            const int recv_block = rank - st;
            push_op(s, rank, Kind::Send, ring.send_to, steps + st, st, 1,
                    sized(block_hi(send_block) - block_lo(send_block), elem_bytes),
                    block_lo(send_block), block_hi(send_block));
            push_op(s, rank, Kind::Recv, ring.recv_from, steps + st, st, 1,
                    sized(block_hi(recv_block) - block_lo(recv_block), elem_bytes),
                    block_lo(recv_block), block_hi(recv_block));
        }
    }
    return s;
}

Schedule allreduce_recursive_doubling_schedule(int world, std::int64_t elems,
                                               std::int64_t elem_bytes) {
    if (world == 1) return make_schedule("allreduce.recursive_doubling", world, 0);
    if (!is_power_of_two(world)) {
        throw std::invalid_argument("recursive doubling requires power-of-two world");
    }
    const int rounds = ilog2_floor(world);
    Schedule s = make_schedule("allreduce.recursive_doubling", world, rounds);
    for (int rank = 0; rank < world; ++rank) {
        for (int r = 0; r < rounds; ++r) {
            const int peer = rank ^ (1 << r);
            push_op(s, rank, Kind::Send, peer, r, r, 0, sized(elems, elem_bytes), 0,
                    elems);
            push_op(s, rank, Kind::Recv, peer, r, r, 0, sized(elems, elem_bytes), 0,
                    elems);
        }
    }
    return s;
}

Schedule allreduce_rabenseifner_schedule(int world, std::int64_t elems,
                                         std::int64_t elem_bytes) {
    if (world == 1) return make_schedule("allreduce.rabenseifner", world, 0);
    if (!is_power_of_two(world)) {
        throw std::invalid_argument("rabenseifner requires power-of-two world");
    }
    if (elems < 0 || elems % world != 0) {
        throw std::invalid_argument("rabenseifner requires m divisible by P");
    }
    const int rounds = ilog2_floor(world);
    Schedule s = make_schedule("allreduce.rabenseifner", world, 2 * rounds);
    for (int rank = 0; rank < world; ++rank) {
        // Phase 0 — reduce-scatter by recursive halving: the owned window
        // [lo, hi) halves each round; the partner's half ships out and the
        // kept half absorbs the partner's data.
        std::int64_t lo = 0, hi = elems;
        for (int r = 0; r < rounds; ++r) {
            const int bit = 1 << (rounds - 1 - r);
            const int peer = rank ^ bit;
            const std::int64_t mid = lo + (hi - lo) / 2;
            const bool keep_lower = (rank & bit) == 0;
            const std::int64_t send_lo = keep_lower ? mid : lo;
            const std::int64_t send_hi = keep_lower ? hi : mid;
            push_op(s, rank, Kind::Send, peer, r, r, 0,
                    sized(send_hi - send_lo, elem_bytes), send_lo, send_hi);
            if (keep_lower) {
                hi = mid;
            } else {
                lo = mid;
            }
            push_op(s, rank, Kind::Recv, peer, r, r, 0, sized(hi - lo, elem_bytes),
                    lo, hi);
        }
        // Phase 1 — allgather by recursive doubling: windows merge back in
        // reverse order, each exchange doubling the owned range.
        for (int r = rounds - 1; r >= 0; --r) {
            const int bit = 1 << (rounds - 1 - r);
            const int peer = rank ^ bit;
            const std::int64_t len = hi - lo;
            push_op(s, rank, Kind::Send, peer, rounds + r, r, 1,
                    sized(len, elem_bytes), lo, hi);
            if ((rank & bit) == 0) {
                // Peer owned the upper sibling window.
                push_op(s, rank, Kind::Recv, peer, rounds + r, r, 1,
                        sized(len, elem_bytes), hi, hi + len);
                hi += len;
            } else {
                push_op(s, rank, Kind::Recv, peer, rounds + r, r, 1,
                        sized(len, elem_bytes), lo - len, lo);
                lo -= len;
            }
        }
    }
    return s;
}

Schedule allgather_schedule(int world, std::int64_t elems_per_rank,
                            std::int64_t elem_bytes, AllgatherAlgo algo) {
    if (elems_per_rank < 0) throw std::invalid_argument("allgather: negative size");
    if (world == 1) {
        return make_schedule(algo == AllgatherAlgo::RecursiveDoubling
                                 ? "allgather.recursive_doubling"
                                 : "allgather.ring",
                             world, 0);
    }
    const std::int64_t n = elems_per_rank;
    if (algo == AllgatherAlgo::RecursiveDoubling && is_power_of_two(world)) {
        const int rounds = ilog2_floor(world);
        Schedule s = make_schedule("allgather.recursive_doubling", world, rounds);
        for (int rank = 0; rank < world; ++rank) {
            for (int r = 0; r < rounds; ++r) {
                const int width = 1 << r;
                const int peer = rank ^ width;
                const int my_base = rank & ~(width - 1);
                const int peer_base = peer & ~(width - 1);
                push_op(s, rank, Kind::Send, peer, r, r, 0,
                        sized(n * width, elem_bytes), n * my_base,
                        n * (my_base + width));
                push_op(s, rank, Kind::Recv, peer, r, r, 0,
                        sized(n * width, elem_bytes), n * peer_base,
                        n * (peer_base + width));
            }
        }
        return s;
    }
    const int steps = world - 1;
    Schedule s = make_schedule("allgather.ring", world, steps);
    for (int rank = 0; rank < world; ++rank) {
        const RingStep ring = ring_neighbors(rank, world);
        for (int st = 0; st < steps; ++st) {
            const int send_block = (rank - st + world) % world;
            const int recv_block = (rank - st - 1 + world) % world;
            push_op(s, rank, Kind::Send, ring.send_to, st, st, 0,
                    sized(n, elem_bytes), n * send_block, n * (send_block + 1));
            push_op(s, rank, Kind::Recv, ring.recv_from, st, st, 0,
                    sized(n, elem_bytes), n * recv_block, n * (recv_block + 1));
        }
    }
    return s;
}

Schedule allgatherv_schedule(int world, std::span<const std::int64_t> bytes_per_rank) {
    if (!bytes_per_rank.empty() &&
        bytes_per_rank.size() != static_cast<std::size_t>(world)) {
        throw std::invalid_argument("allgatherv: bytes_per_rank size mismatch");
    }
    if (world == 1) return make_schedule("allgatherv.ring", world, 0);
    auto block_bytes = [&](int b) {
        return bytes_per_rank.empty() ? kVariableBytes
                                      : bytes_per_rank[static_cast<std::size_t>(b)];
    };
    const int steps = world - 1;
    Schedule s = make_schedule("allgatherv.ring", world, steps);
    for (int rank = 0; rank < world; ++rank) {
        const RingStep ring = ring_neighbors(rank, world);
        for (int st = 0; st < steps; ++st) {
            const int send_block = (rank - st + world) % world;
            const int recv_block = (rank - st - 1 + world) % world;
            push_op(s, rank, Kind::Send, ring.send_to, st, st, 0,
                    block_bytes(send_block), send_block, send_block + 1);
            push_op(s, rank, Kind::Recv, ring.recv_from, st, st, 0,
                    block_bytes(recv_block), recv_block, recv_block + 1);
        }
    }
    return s;
}

Schedule telemetry_allgather_schedule(int world, std::int64_t stats_bytes) {
    if (stats_bytes <= 0) {
        throw std::invalid_argument("telemetry: stats_bytes must be positive");
    }
    if (world - 1 > comm::kTagTelemetryCount) {
        throw std::invalid_argument(
            "telemetry: world exceeds the reserved telemetry tag band");
    }
    Schedule s = make_schedule("telemetry.allgather", world, 0);
    s.absolute_tags = true;
    if (world == 1) return s;
    const int steps = world - 1;
    for (int rank = 0; rank < world; ++rank) {
        const RingStep ring = ring_neighbors(rank, world);
        for (int st = 0; st < steps; ++st) {
            const int send_block = (rank - st + world) % world;
            const int recv_block = (rank - st - 1 + world) % world;
            const int tag = comm::kTagTelemetryBase + st;
            push_op(s, rank, Kind::Send, ring.send_to, tag, st, 0, stats_bytes,
                    send_block, send_block + 1);
            push_op(s, rank, Kind::Recv, ring.recv_from, tag, st, 0, stats_bytes,
                    recv_block, recv_block + 1);
        }
    }
    return s;
}

Schedule gather_schedule(int world, int root, std::int64_t bytes) {
    if (root < 0 || root >= world) throw std::invalid_argument("gather: bad root");
    // NOTE: unlike the other collectives, the gather implementation reserves
    // its tag even for world == 1 (it has no early return), so the schedule
    // must account for the block to keep tag replay exact.
    Schedule s = make_schedule("gather.flat", world, 1);
    for (int src = 0; src < world; ++src) {
        if (src == root) continue;
        push_op(s, src, Kind::Send, root, 0, 0, 0, bytes, src, src + 1);
        push_op(s, root, Kind::Recv, src, 0, 0, 0, bytes, src, src + 1);
    }
    return s;
}

Schedule gtopk_merge_schedule(int world, std::int64_t wire_bytes) {
    if (world == 1) return make_schedule("gtopk.merge", world, 0);
    const int base = 1 << ilog2_floor(world);
    const int excess = world - base;
    const int rounds = tree_merge_rounds(base);
    // Tag block: offset 0 is the fold tag, offsets 1..rounds the tree
    // rounds — contiguous, exactly like the implementation's consecutive
    // fresh_tags(1) + fresh_tags(rounds) reservations.
    Schedule s = make_schedule("gtopk.merge", world, 1 + rounds);
    // Phase 0 — fold ranks beyond the power-of-two base into the base.
    for (int rank = base; rank < world; ++rank) {
        push_op(s, rank, Kind::Send, rank - base, 0, 0, 0, wire_bytes);
        push_op(s, rank - base, Kind::Recv, rank, 0, 0, 0, wire_bytes);
    }
    // Phase 1 — the distance-doubling tree of Fig. 4 over the base ranks.
    for (int rank = 0; rank < base; ++rank) {
        for (int r = 0; r < rounds; ++r) {
            const TreeMergeStep step = tree_merge_step(rank, r, base);
            if (step.role == TreeMergeStep::Role::Send) {
                push_op(s, rank, Kind::Send, step.peer, 1 + r, r, 1, wire_bytes);
                break;  // folded in; this rank waits for the broadcast
            }
            if (step.role == TreeMergeStep::Role::Receive) {
                push_op(s, rank, Kind::Recv, step.peer, 1 + r, r, 1, wire_bytes);
            }
        }
    }
    return s;
}

Schedule concat_schedules(std::string proto, std::span<const Schedule> parts) {
    if (parts.empty()) throw std::invalid_argument("concat_schedules: no parts");
    Schedule out = make_schedule(std::move(proto), parts[0].world, 0);
    for (const Schedule& part : parts) {
        if (part.world != out.world) {
            throw std::invalid_argument("concat_schedules: world mismatch");
        }
        if (part.absolute_tags) {
            throw std::invalid_argument("concat_schedules: absolute-tag part");
        }
        for (int rank = 0; rank < out.world; ++rank) {
            for (CommOp op : part.rank_ops(rank)) {
                op.tag_offset += out.tag_count;
                out.ranks[static_cast<std::size_t>(rank)].push_back(op);
            }
        }
        out.tag_count += part.tag_count;
    }
    return out;
}

Schedule remap_schedule(const Schedule& sched, std::span<const int> survivors,
                        int physical_world) {
    if (sched.world != static_cast<int>(survivors.size())) {
        throw std::invalid_argument(
            "remap_schedule: schedule world != survivor count");
    }
    for (std::size_t i = 0; i < survivors.size(); ++i) {
        if (survivors[i] < 0 || survivors[i] >= physical_world) {
            throw std::invalid_argument("remap_schedule: survivor outside world");
        }
        if (i > 0 && survivors[i] <= survivors[i - 1]) {
            throw std::invalid_argument(
                "remap_schedule: survivors must be sorted unique");
        }
    }
    Schedule out = make_schedule(sched.proto + ".remap", physical_world,
                                 sched.tag_count);
    out.absolute_tags = sched.absolute_tags;
    for (int logical = 0; logical < sched.world; ++logical) {
        const int phys = survivors[static_cast<std::size_t>(logical)];
        auto& program = out.ranks[static_cast<std::size_t>(phys)];
        for (CommOp op : sched.rank_ops(logical)) {
            // Same guard as verify_survivor_confinement: a default-initialized
            // peer (-1) would otherwise index out of bounds after the cast.
            if (op.peer < 0 || op.peer >= sched.world) {
                throw std::invalid_argument(
                    "remap_schedule: op peer outside schedule world");
            }
            op.peer = survivors[static_cast<std::size_t>(op.peer)];
            program.push_back(op);
        }
    }
    return out;
}

}  // namespace gtopk::collectives
