#include "collectives/cost_model.hpp"

#include <cmath>

#include "collectives/schedule.hpp"

namespace gtopk::collectives {

namespace {
double log2i(int workers) { return static_cast<double>(ilog2_ceil(workers)); }
}  // namespace

double dense_allreduce_time_s(const comm::NetworkModel& net, int workers,
                              std::uint64_t elements) {
    if (workers <= 1) return 0.0;
    const double P = workers;
    const double m = static_cast<double>(elements);
    return 2.0 * (P - 1.0) * net.alpha_s + 2.0 * (P - 1.0) / P * m * net.beta_s;
}

double topk_allreduce_time_s(const comm::NetworkModel& net, int workers,
                             std::uint64_t k) {
    if (workers <= 1) return 0.0;
    const double P = workers;
    const double kd = static_cast<double>(k);
    return log2i(workers) * net.alpha_s + 2.0 * (P - 1.0) * kd * net.beta_s;
}

double gtopk_allreduce_time_s(const comm::NetworkModel& net, int workers,
                              std::uint64_t k) {
    if (workers <= 1) return 0.0;
    const double kd = static_cast<double>(k);
    return 2.0 * log2i(workers) * net.alpha_s + 4.0 * kd * log2i(workers) * net.beta_s;
}

double barrier_time_s(const comm::NetworkModel& net, int workers) {
    if (workers <= 1) return 0.0;
    return log2i(workers) * net.alpha_s;
}

double broadcast_time_s(const comm::NetworkModel& net, int workers,
                        std::uint64_t elements) {
    if (workers <= 1) return 0.0;
    return log2i(workers) * net.transfer_time_elems(elements);
}

double flat_broadcast_time_s(const comm::NetworkModel& net, int workers,
                             std::uint64_t elements) {
    if (workers <= 1) return 0.0;
    return static_cast<double>(workers - 1) * net.transfer_time_elems(elements);
}

double allgather_time_s(const comm::NetworkModel& net, int workers,
                        std::uint64_t elements_per_rank) {
    if (workers <= 1) return 0.0;
    const double P = workers;
    return log2i(workers) * net.alpha_s +
           (P - 1.0) * static_cast<double>(elements_per_rank) * net.beta_s;
}

double rabenseifner_allreduce_time_s(const comm::NetworkModel& net, int workers,
                                     std::uint64_t elements) {
    if (workers <= 1) return 0.0;
    const double P = workers;
    const double m = static_cast<double>(elements);
    return 2.0 * log2i(workers) * net.alpha_s + 2.0 * (P - 1.0) / P * m * net.beta_s;
}

}  // namespace gtopk::collectives
