// From-scratch MPI-style collectives over the point-to-point Communicator.
//
// Implemented algorithms (all schedule logic lives in schedule.hpp):
//   barrier             dissemination, ceil(log2 P) rounds
//   broadcast           binomial tree (default) or flat tree
//   reduce_sum          binomial-tree reduction to a root
//   allreduce ring      reduce-scatter + allgather ring, Eq. 5's
//                       2(P-1)a + 2 (P-1)/P m b cost
//   allreduce rec.dbl.  recursive doubling (power-of-two P), logP(a + m b)
//   allreduce raben.    recursive halving + doubling, 2 logP latency terms
//   allgather           recursive doubling (default; the paper's Eq. 6 cost
//                       log(P) a + (P-1) n b per contributed n) or ring
//   allgatherv          variable contribution sizes
//   gather              flat gather to a root
//
// Every collective EXECUTES the op program its schedule generator emits
// (schedule.hpp): the generator decides peers, tags, ordering and element
// ranges; the code here only moves bytes and combines received data. The
// static model checker in src/analysis/ verifies the same programs, so the
// analyzed spec cannot drift from the running code by construction.
//
// All of them are value-semantic templates over trivially copyable T.
#pragma once

#include <cstring>
#include <span>
#include <stdexcept>
#include <vector>

#include "collectives/schedule.hpp"
#include "comm/communicator.hpp"
#include "obs/trace.hpp"

namespace gtopk::collectives {

using comm::Communicator;

namespace detail {

/// Execute a dense-element schedule over `data`: a Send op ships
/// data[op.a, op.b); a Recv op lands in data[op.a, op.b) through `combine`,
/// which sees the op (for its phase) plus destination and incoming spans.
template <typename T, typename Combine>
void run_dense_program(Communicator& comm, const Schedule& sched, std::span<T> data,
                       Combine&& combine) {
    static_assert(std::is_trivially_copyable_v<T>);
    const int tag = comm.fresh_tags(sched.tag_count);
    std::vector<T> incoming;  // hoisted: capacity reused across ops
    for (const CommOp& op : sched.rank_ops(comm.rank())) {
        if (op.kind == CommOp::Kind::Send) {
            comm.send_vec<T>(op.peer, tag + op.tag_offset,
                             std::span<const T>(data.data() + op.a,
                                                static_cast<std::size_t>(op.b - op.a)));
        } else {
            comm.recv_vec_into<T>(op.peer, tag + op.tag_offset, incoming);
            std::span<T> dst(data.data() + op.a,
                             static_cast<std::size_t>(op.b - op.a));
            if (incoming.size() != dst.size()) {
                throw std::runtime_error(sched.proto + ": size mismatch");
            }
            combine(op, dst, std::span<const T>(incoming));
        }
    }
}

/// Recv combiner: elementwise sum into the destination range.
template <typename T>
void combine_add(std::span<T> dst, std::span<const T> incoming) {
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] += incoming[i];
}

/// Recv combiner: overwrite the destination range.
template <typename T>
void combine_copy(std::span<T> dst, std::span<const T> incoming) {
    std::memcpy(dst.data(), incoming.data(), incoming.size() * sizeof(T));
}

}  // namespace detail

/// Dissemination barrier: every rank is released only after transitively
/// hearing from every other rank.
inline void barrier(Communicator& comm) {
    if (comm.size() == 1) return;
    obs::ScopedSpan span(comm.tracer(), comm.clock(), comm.rank(), "barrier",
                         "collective");
    const Schedule sched = barrier_schedule(comm.size());
    const int tag = comm.fresh_tags(sched.tag_count);
    const std::byte token{0};
    for (const CommOp& op : sched.rank_ops(comm.rank())) {
        if (op.kind == CommOp::Kind::Send) {
            comm.send(op.peer, tag + op.tag_offset,
                      std::span<const std::byte>(&token, 1));
        } else {
            (void)comm.recv(op.peer, tag + op.tag_offset);
        }
    }
}

template <typename T>
void broadcast(Communicator& comm, std::vector<T>& data, int root,
               BcastAlgo algo = BcastAlgo::BinomialTree) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (comm.size() == 1) return;
    obs::ScopedSpan span(comm.tracer(), comm.clock(), comm.rank(), "broadcast",
                         "collective");
    span.attrs().bytes = static_cast<std::int64_t>(data.size() * sizeof(T));
    // Non-root ranks don't know the payload size yet, so the ops carry the
    // whole (resizable) vector rather than element ranges.
    const Schedule sched = broadcast_schedule(
        comm.size(), root, static_cast<std::int64_t>(data.size() * sizeof(T)), algo);
    const int tag = comm.fresh_tags(sched.tag_count);
    for (const CommOp& op : sched.rank_ops(comm.rank())) {
        if (op.kind == CommOp::Kind::Send) {
            comm.send_vec<T>(op.peer, tag + op.tag_offset, data);
        } else {
            comm.recv_vec_into<T>(op.peer, tag + op.tag_offset, data);
            span.attrs().bytes = static_cast<std::int64_t>(data.size() * sizeof(T));
            span.attrs().round = op.round;
        }
    }
}

/// Binomial-tree sum-reduction; the full result lands on `root` (other
/// ranks get their partial state back unchanged semantics-wise: the
/// returned vector is meaningful only on root).
template <typename T>
std::vector<T> reduce_sum(Communicator& comm, std::span<const T> local, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<T> acc(local.begin(), local.end());
    if (comm.size() == 1) return acc;
    obs::ScopedSpan span(comm.tracer(), comm.clock(), comm.rank(), "reduce",
                         "collective");
    span.attrs().bytes = static_cast<std::int64_t>(acc.size() * sizeof(T));
    const Schedule sched = reduce_schedule(
        comm.size(), root, static_cast<std::int64_t>(acc.size() * sizeof(T)));
    const int tag = comm.fresh_tags(sched.tag_count);
    std::vector<T> incoming;
    for (const CommOp& op : sched.rank_ops(comm.rank())) {
        if (op.kind == CommOp::Kind::Send) {
            comm.send_vec<T>(op.peer, tag + op.tag_offset, acc);
        } else {
            comm.recv_vec_into<T>(op.peer, tag + op.tag_offset, incoming);
            if (incoming.size() != acc.size()) {
                throw std::runtime_error("reduce_sum: size mismatch");
            }
            detail::combine_add<T>(acc, incoming);
        }
    }
    return acc;
}

/// Ring allreduce (sum), in place: reduce-scatter pass then allgather pass,
/// 2(P-1) steps of m/P elements each — the DenseAllReduce of the paper.
template <typename T>
void allreduce_sum_ring(Communicator& comm, std::vector<T>& data) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (comm.size() == 1) return;
    obs::ScopedSpan span(comm.tracer(), comm.clock(), comm.rank(),
                         "allreduce.ring", "collective");
    span.attrs().bytes = static_cast<std::int64_t>(data.size() * sizeof(T));
    const Schedule sched = allreduce_ring_schedule(
        comm.size(), static_cast<std::int64_t>(data.size()),
        static_cast<std::int64_t>(sizeof(T)));
    detail::run_dense_program<T>(
        comm, sched, std::span<T>(data),
        [](const CommOp& op, std::span<T> dst, std::span<const T> incoming) {
            // Phase 0 = reduce-scatter (accumulate), phase 1 = allgather.
            if (op.phase == 0) {
                detail::combine_add<T>(dst, incoming);
            } else {
                detail::combine_copy<T>(dst, incoming);
            }
        });
}

/// Recursive-doubling allreduce (sum), in place. Requires power-of-two P;
/// logP rounds of full-vector exchange — latency-optimal, bandwidth-heavy.
template <typename T>
void allreduce_sum_recursive_doubling(Communicator& comm, std::vector<T>& data) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (comm.size() == 1) return;
    if (!is_power_of_two(comm.size())) {
        throw std::invalid_argument("recursive doubling requires power-of-two world");
    }
    obs::ScopedSpan span(comm.tracer(), comm.clock(), comm.rank(),
                         "allreduce.recursive_doubling", "collective");
    span.attrs().bytes = static_cast<std::int64_t>(data.size() * sizeof(T));
    const Schedule sched = allreduce_recursive_doubling_schedule(
        comm.size(), static_cast<std::int64_t>(data.size()),
        static_cast<std::int64_t>(sizeof(T)));
    detail::run_dense_program<T>(
        comm, sched, std::span<T>(data),
        [](const CommOp&, std::span<T> dst, std::span<const T> incoming) {
            detail::combine_add<T>(dst, incoming);
        });
}

/// Rabenseifner allreduce (sum), in place: recursive-halving
/// reduce-scatter then recursive-doubling allgather. Same asymptotic
/// bandwidth as the ring (2 (P-1)/P m beta) but only 2 logP latency terms —
/// the classic choice for large messages at scale. Requires power-of-two P
/// and data.size() divisible by P (callers pad or pick the ring otherwise).
template <typename T>
void allreduce_sum_rabenseifner(Communicator& comm, std::vector<T>& data) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (comm.size() == 1) return;
    if (!is_power_of_two(comm.size())) {
        throw std::invalid_argument("rabenseifner requires power-of-two world");
    }
    if (data.size() % static_cast<std::size_t>(comm.size()) != 0) {
        throw std::invalid_argument("rabenseifner requires m divisible by P");
    }
    obs::ScopedSpan span(comm.tracer(), comm.clock(), comm.rank(),
                         "allreduce.rabenseifner", "collective");
    span.attrs().bytes = static_cast<std::int64_t>(data.size() * sizeof(T));
    const Schedule sched = allreduce_rabenseifner_schedule(
        comm.size(), static_cast<std::int64_t>(data.size()),
        static_cast<std::int64_t>(sizeof(T)));
    detail::run_dense_program<T>(
        comm, sched, std::span<T>(data),
        [](const CommOp& op, std::span<T> dst, std::span<const T> incoming) {
            if (op.phase == 0) {
                detail::combine_add<T>(dst, incoming);
            } else {
                detail::combine_copy<T>(dst, incoming);
            }
        });
}

template <typename T>
void allreduce_sum(Communicator& comm, std::vector<T>& data,
                   AllreduceAlgo algo = AllreduceAlgo::Ring) {
    switch (algo) {
        case AllreduceAlgo::Ring: allreduce_sum_ring(comm, data); break;
        case AllreduceAlgo::RecursiveDoubling:
            allreduce_sum_recursive_doubling(comm, data);
            break;
        case AllreduceAlgo::Rabenseifner: allreduce_sum_rabenseifner(comm, data); break;
    }
}

/// Allgather with equal per-rank contributions. Result is the concatenation
/// in rank order: [rank0 | rank1 | ... | rankP-1].
template <typename T>
std::vector<T> allgather(Communicator& comm, std::span<const T> mine,
                         AllgatherAlgo algo = AllgatherAlgo::RecursiveDoubling) {
    static_assert(std::is_trivially_copyable_v<T>);
    const int world = comm.size();
    const std::size_t n = mine.size();
    std::vector<T> out(n * static_cast<std::size_t>(world));
    std::memcpy(out.data() + n * static_cast<std::size_t>(comm.rank()), mine.data(),
                n * sizeof(T));
    if (world == 1) return out;
    obs::ScopedSpan span(comm.tracer(), comm.clock(), comm.rank(), "allgather",
                         "collective");
    span.attrs().bytes = static_cast<std::int64_t>(n * sizeof(T));
    const Schedule sched =
        allgather_schedule(world, static_cast<std::int64_t>(n),
                           static_cast<std::int64_t>(sizeof(T)), algo);
    detail::run_dense_program<T>(
        comm, sched, std::span<T>(out),
        [](const CommOp&, std::span<T> dst, std::span<const T> incoming) {
            detail::combine_copy<T>(dst, incoming);
        });
    return out;
}

/// Allgather with per-rank variable sizes. Returns one vector per rank.
template <typename T>
std::vector<std::vector<T>> allgatherv(Communicator& comm, std::span<const T> mine) {
    static_assert(std::is_trivially_copyable_v<T>);
    const int world = comm.size();
    std::vector<std::vector<T>> out(static_cast<std::size_t>(world));
    out[static_cast<std::size_t>(comm.rank())].assign(mine.begin(), mine.end());
    if (world == 1) return out;
    obs::ScopedSpan span(comm.tracer(), comm.clock(), comm.rank(), "allgatherv",
                         "collective");
    span.attrs().bytes = static_cast<std::int64_t>(mine.size() * sizeof(T));

    // Ring of whole per-rank blocks; op operands are BLOCK indices because
    // element offsets depend on sizes only the owners know.
    const Schedule sched = allgatherv_schedule(world, {});
    const int tag = comm.fresh_tags(sched.tag_count);
    for (const CommOp& op : sched.rank_ops(comm.rank())) {
        auto& block = out[static_cast<std::size_t>(op.a)];
        if (op.kind == CommOp::Kind::Send) {
            comm.send_vec<T>(op.peer, tag + op.tag_offset, block);
        } else {
            comm.recv_vec_into<T>(op.peer, tag + op.tag_offset, block);
        }
    }
    return out;
}

/// Flat gather of equal-size contributions to `root`; result meaningful on
/// root only (rank order concatenation).
template <typename T>
std::vector<T> gather(Communicator& comm, std::span<const T> mine, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    const int world = comm.size();
    obs::ScopedSpan span(comm.tracer(), comm.clock(), comm.rank(), "gather",
                         "collective");
    span.attrs().bytes = static_cast<std::int64_t>(mine.size() * sizeof(T));
    const Schedule sched = gather_schedule(
        world, root, static_cast<std::int64_t>(mine.size() * sizeof(T)));
    const int tag = comm.fresh_tags(sched.tag_count);
    if (comm.rank() != root) {
        for (const CommOp& op : sched.rank_ops(comm.rank())) {
            comm.send_vec<T>(op.peer, tag + op.tag_offset, mine);
        }
        return {};
    }
    std::vector<T> out(mine.size() * static_cast<std::size_t>(world));
    std::memcpy(out.data() + mine.size() * static_cast<std::size_t>(root), mine.data(),
                mine.size() * sizeof(T));
    std::vector<T> part;
    for (const CommOp& op : sched.rank_ops(root)) {
        comm.recv_vec_into<T>(op.peer, tag + op.tag_offset, part);
        if (part.size() != mine.size()) throw std::runtime_error("gather: size mismatch");
        std::memcpy(out.data() + part.size() * static_cast<std::size_t>(op.a),
                    part.data(), part.size() * sizeof(T));
    }
    return out;
}

}  // namespace gtopk::collectives
