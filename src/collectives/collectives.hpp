// From-scratch MPI-style collectives over the point-to-point Communicator.
//
// Implemented algorithms (all schedule logic lives in schedule.hpp):
//   barrier             dissemination, ceil(log2 P) rounds
//   broadcast           binomial tree (default) or flat tree
//   reduce_sum          binomial-tree reduction to a root
//   allreduce ring      reduce-scatter + allgather ring, Eq. 5's
//                       2(P-1)a + 2 (P-1)/P m b cost
//   allreduce rec.dbl.  recursive doubling (power-of-two P), logP(a + m b)
//   allgather           recursive doubling (default; the paper's Eq. 6 cost
//                       log(P) a + (P-1) n b per contributed n) or ring
//   allgatherv          variable contribution sizes
//   gather              flat gather to a root
//
// All of them are value-semantic templates over trivially copyable T.
#pragma once

#include <cstring>
#include <span>
#include <stdexcept>
#include <vector>

#include "collectives/schedule.hpp"
#include "comm/communicator.hpp"
#include "obs/trace.hpp"

namespace gtopk::collectives {

using comm::Communicator;

enum class BcastAlgo { BinomialTree, FlatTree };
enum class AllgatherAlgo { RecursiveDoubling, Ring };
enum class AllreduceAlgo { Ring, RecursiveDoubling, Rabenseifner };

/// Dissemination barrier: every rank is released only after transitively
/// hearing from every other rank.
inline void barrier(Communicator& comm) {
    const int world = comm.size();
    if (world == 1) return;
    obs::ScopedSpan span(comm.tracer(), comm.clock(), comm.rank(), "barrier",
                         "collective");
    const int rounds = ilog2_ceil(world);
    const int tag = comm.fresh_tags(rounds);
    const std::byte token{0};
    for (int r = 0; r < rounds; ++r) {
        const DisseminationStep step = dissemination_step(comm.rank(), r, world);
        comm.send(step.send_to, tag + r, std::span<const std::byte>(&token, 1));
        (void)comm.recv(step.recv_from, tag + r);
    }
}

template <typename T>
void broadcast(Communicator& comm, std::vector<T>& data, int root,
               BcastAlgo algo = BcastAlgo::BinomialTree) {
    static_assert(std::is_trivially_copyable_v<T>);
    const int world = comm.size();
    if (world == 1) return;
    obs::ScopedSpan span(comm.tracer(), comm.clock(), comm.rank(), "broadcast",
                         "collective");
    span.attrs().bytes = static_cast<std::int64_t>(data.size() * sizeof(T));
    if (algo == BcastAlgo::FlatTree) {
        const int tag = comm.fresh_tags(1);
        if (comm.rank() == root) {
            for (int dst = 0; dst < world; ++dst) {
                if (dst != root) comm.send_vec<T>(dst, tag, data);
            }
        } else {
            comm.recv_vec_into<T>(root, tag, data);
            span.attrs().bytes = static_cast<std::int64_t>(data.size() * sizeof(T));
        }
        return;
    }
    const int rounds = ilog2_ceil(world);
    const int tag = comm.fresh_tags(rounds);
    const BinomialBcastPlan plan = binomial_bcast_plan(comm.rank(), root, world);
    if (plan.recv_round >= 0) {
        comm.recv_vec_into<T>(plan.recv_from, tag + plan.recv_round, data);
        span.attrs().bytes = static_cast<std::int64_t>(data.size() * sizeof(T));
        span.attrs().round = plan.recv_round;
    }
    for (const auto& [round, dst] : plan.sends) {
        comm.send_vec<T>(dst, tag + round, data);
    }
}

/// Binomial-tree sum-reduction; the full result lands on `root` (other
/// ranks get their partial state back unchanged semantics-wise: the
/// returned vector is meaningful only on root).
template <typename T>
std::vector<T> reduce_sum(Communicator& comm, std::span<const T> local, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    const int world = comm.size();
    std::vector<T> acc(local.begin(), local.end());
    if (world == 1) return acc;
    obs::ScopedSpan span(comm.tracer(), comm.clock(), comm.rank(), "reduce",
                         "collective");
    span.attrs().bytes = static_cast<std::int64_t>(acc.size() * sizeof(T));

    // Reduce in the rotated space where root is 0, mirroring the bcast tree
    // run backwards: at round r, virtual ranks with bit r set send their
    // accumulator to vrank - 2^r and drop out.
    const int vrank = (comm.rank() - root + world) % world;
    const int rounds = ilog2_ceil(world);
    const int tag = comm.fresh_tags(rounds);
    std::vector<T> incoming;
    for (int r = 0; r < rounds; ++r) {
        const int bit = 1 << r;
        if (vrank & bit) {
            const int vdst = vrank - bit;
            comm.send_vec<T>((vdst + root) % world, tag + r, acc);
            break;  // this rank's contribution has been handed off
        }
        const int vsrc = vrank + bit;
        if (vsrc < world && (vrank & (bit - 1)) == 0) {
            comm.recv_vec_into<T>((vsrc + root) % world, tag + r, incoming);
            if (incoming.size() != acc.size()) {
                throw std::runtime_error("reduce_sum: size mismatch");
            }
            for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += incoming[i];
        }
    }
    return acc;
}

/// Ring allreduce (sum), in place: reduce-scatter pass then allgather pass,
/// 2(P-1) steps of m/P elements each — the DenseAllReduce of the paper.
template <typename T>
void allreduce_sum_ring(Communicator& comm, std::vector<T>& data) {
    static_assert(std::is_trivially_copyable_v<T>);
    const int world = comm.size();
    if (world == 1) return;
    obs::ScopedSpan span(comm.tracer(), comm.clock(), comm.rank(),
                         "allreduce.ring", "collective");
    span.attrs().bytes = static_cast<std::int64_t>(data.size() * sizeof(T));
    const int rank = comm.rank();
    const RingStep ring = ring_neighbors(rank, world);
    const auto offsets = ring_block_offsets(data.size(), world);
    const int steps = world - 1;
    const int tag = comm.fresh_tags(2 * steps);

    auto block = [&](int b) {
        b = ((b % world) + world) % world;
        const std::size_t lo = offsets[static_cast<std::size_t>(b)];
        const std::size_t hi = offsets[static_cast<std::size_t>(b) + 1];
        return std::span<T>(data.data() + lo, hi - lo);
    };

    // Reduce-scatter: after step s, rank holds the sum of (s+2) ranks'
    // values for block (rank - s - 1). `incoming` is hoisted so its
    // capacity (like the wire buffers underneath) is reused every step.
    std::vector<T> incoming;
    for (int s = 0; s < steps; ++s) {
        const int send_block = rank - s;
        const int recv_block = rank - s - 1;
        comm.send_vec<T>(ring.send_to, tag + s, std::span<const T>(block(send_block)));
        comm.recv_vec_into<T>(ring.recv_from, tag + s, incoming);
        auto dst = block(recv_block);
        if (incoming.size() != dst.size()) {
            throw std::runtime_error("allreduce_sum_ring: block size mismatch");
        }
        for (std::size_t i = 0; i < dst.size(); ++i) dst[i] += incoming[i];
    }
    // Allgather: circulate the fully reduced blocks.
    for (int s = 0; s < steps; ++s) {
        const int send_block = rank + 1 - s;
        const int recv_block = rank - s;
        comm.send_vec<T>(ring.send_to, tag + steps + s,
                         std::span<const T>(block(send_block)));
        comm.recv_vec_into<T>(ring.recv_from, tag + steps + s, incoming);
        auto dst = block(recv_block);
        std::memcpy(dst.data(), incoming.data(), incoming.size() * sizeof(T));
    }
}

/// Recursive-doubling allreduce (sum), in place. Requires power-of-two P;
/// logP rounds of full-vector exchange — latency-optimal, bandwidth-heavy.
template <typename T>
void allreduce_sum_recursive_doubling(Communicator& comm, std::vector<T>& data) {
    static_assert(std::is_trivially_copyable_v<T>);
    const int world = comm.size();
    if (world == 1) return;
    if (!is_power_of_two(world)) {
        throw std::invalid_argument("recursive doubling requires power-of-two world");
    }
    obs::ScopedSpan span(comm.tracer(), comm.clock(), comm.rank(),
                         "allreduce.recursive_doubling", "collective");
    span.attrs().bytes = static_cast<std::int64_t>(data.size() * sizeof(T));
    const int rounds = ilog2_floor(world);
    const int tag = comm.fresh_tags(rounds);
    std::vector<T> incoming;
    for (int r = 0; r < rounds; ++r) {
        const int peer = comm.rank() ^ (1 << r);
        comm.send_vec<T>(peer, tag + r, data);
        comm.recv_vec_into<T>(peer, tag + r, incoming);
        for (std::size_t i = 0; i < data.size(); ++i) data[i] += incoming[i];
    }
}

/// Rabenseifner allreduce (sum), in place: recursive-halving
/// reduce-scatter then recursive-doubling allgather. Same asymptotic
/// bandwidth as the ring (2 (P-1)/P m beta) but only 2 logP latency terms —
/// the classic choice for large messages at scale. Requires power-of-two P
/// and data.size() divisible by P (callers pad or pick the ring otherwise).
template <typename T>
void allreduce_sum_rabenseifner(Communicator& comm, std::vector<T>& data) {
    static_assert(std::is_trivially_copyable_v<T>);
    const int world = comm.size();
    if (world == 1) return;
    if (!is_power_of_two(world)) {
        throw std::invalid_argument("rabenseifner requires power-of-two world");
    }
    if (data.size() % static_cast<std::size_t>(world) != 0) {
        throw std::invalid_argument("rabenseifner requires m divisible by P");
    }
    obs::ScopedSpan span(comm.tracer(), comm.clock(), comm.rank(),
                         "allreduce.rabenseifner", "collective");
    span.attrs().bytes = static_cast<std::int64_t>(data.size() * sizeof(T));
    const int rounds = ilog2_floor(world);
    const int tag = comm.fresh_tags(2 * rounds);
    const int rank = comm.rank();

    // Phase 1 — reduce-scatter by recursive halving: the owned window
    // [lo, hi) halves every round; the half belonging to the partner's
    // side is shipped out and the kept half absorbs the partner's data.
    std::size_t lo = 0, hi = data.size();
    std::vector<T> incoming;
    for (int r = 0; r < rounds; ++r) {
        const int bit = 1 << (rounds - 1 - r);
        const int peer = rank ^ bit;
        const std::size_t mid = lo + (hi - lo) / 2;
        const bool keep_lower = (rank & bit) == 0;
        const std::size_t send_lo = keep_lower ? mid : lo;
        const std::size_t send_hi = keep_lower ? hi : mid;
        comm.send_vec<T>(peer, tag + r,
                         std::span<const T>(data.data() + send_lo, send_hi - send_lo));
        comm.recv_vec_into<T>(peer, tag + r, incoming);
        if (keep_lower) {
            hi = mid;
        } else {
            lo = mid;
        }
        if (incoming.size() != hi - lo) {
            throw std::runtime_error("rabenseifner: window size mismatch");
        }
        for (std::size_t i = 0; i < incoming.size(); ++i) data[lo + i] += incoming[i];
    }

    // Phase 2 — allgather by recursive doubling: windows merge back in the
    // reverse order, each exchange doubling the owned range.
    for (int r = rounds - 1; r >= 0; --r) {
        const int bit = 1 << (rounds - 1 - r);
        const int peer = rank ^ bit;
        comm.send_vec<T>(peer, tag + rounds + r,
                         std::span<const T>(data.data() + lo, hi - lo));
        comm.recv_vec_into<T>(peer, tag + rounds + r, incoming);
        if ((rank & bit) == 0) {
            // Peer owned the upper sibling window.
            std::memcpy(data.data() + hi, incoming.data(), incoming.size() * sizeof(T));
            hi += incoming.size();
        } else {
            std::memcpy(data.data() + lo - incoming.size(), incoming.data(),
                        incoming.size() * sizeof(T));
            lo -= incoming.size();
        }
    }
}

template <typename T>
void allreduce_sum(Communicator& comm, std::vector<T>& data,
                   AllreduceAlgo algo = AllreduceAlgo::Ring) {
    switch (algo) {
        case AllreduceAlgo::Ring: allreduce_sum_ring(comm, data); break;
        case AllreduceAlgo::RecursiveDoubling:
            allreduce_sum_recursive_doubling(comm, data);
            break;
        case AllreduceAlgo::Rabenseifner: allreduce_sum_rabenseifner(comm, data); break;
    }
}

/// Allgather with equal per-rank contributions. Result is the concatenation
/// in rank order: [rank0 | rank1 | ... | rankP-1].
template <typename T>
std::vector<T> allgather(Communicator& comm, std::span<const T> mine,
                         AllgatherAlgo algo = AllgatherAlgo::RecursiveDoubling) {
    static_assert(std::is_trivially_copyable_v<T>);
    const int world = comm.size();
    const std::size_t n = mine.size();
    std::vector<T> out(n * static_cast<std::size_t>(world));
    std::memcpy(out.data() + n * static_cast<std::size_t>(comm.rank()), mine.data(),
                n * sizeof(T));
    if (world == 1) return out;
    obs::ScopedSpan span(comm.tracer(), comm.clock(), comm.rank(), "allgather",
                         "collective");
    span.attrs().bytes = static_cast<std::int64_t>(n * sizeof(T));

    if (algo == AllgatherAlgo::RecursiveDoubling && is_power_of_two(world)) {
        // At round r each rank owns a contiguous 2^r-rank-wide window (in
        // the space of rank-with-low-bits-cleared) and swaps it with the
        // buddy window of rank ^ 2^r.
        const int rounds = ilog2_floor(world);
        const int tag = comm.fresh_tags(rounds);
        std::vector<T> incoming;
        for (int r = 0; r < rounds; ++r) {
            const int width = 1 << r;
            const int peer = comm.rank() ^ width;
            const int my_base = comm.rank() & ~(width - 1);
            const int peer_base = peer & ~(width - 1);
            std::span<const T> window(out.data() + n * static_cast<std::size_t>(my_base),
                                      n * static_cast<std::size_t>(width));
            comm.send_vec<T>(peer, tag + r, window);
            comm.recv_vec_into<T>(peer, tag + r, incoming);
            std::memcpy(out.data() + n * static_cast<std::size_t>(peer_base),
                        incoming.data(), incoming.size() * sizeof(T));
        }
        return out;
    }

    // Ring allgather: P-1 steps, forwarding the newest block each time.
    const RingStep ring = ring_neighbors(comm.rank(), world);
    const int tag = comm.fresh_tags(world - 1);
    std::vector<T> incoming;
    for (int s = 0; s < world - 1; ++s) {
        const int send_block = (comm.rank() - s + world) % world;
        const int recv_block = (comm.rank() - s - 1 + world) % world;
        std::span<const T> window(out.data() + n * static_cast<std::size_t>(send_block), n);
        comm.send_vec<T>(ring.send_to, tag + s, window);
        comm.recv_vec_into<T>(ring.recv_from, tag + s, incoming);
        std::memcpy(out.data() + n * static_cast<std::size_t>(recv_block),
                    incoming.data(), incoming.size() * sizeof(T));
    }
    return out;
}

/// Allgather with per-rank variable sizes. Returns one vector per rank.
template <typename T>
std::vector<std::vector<T>> allgatherv(Communicator& comm, std::span<const T> mine) {
    static_assert(std::is_trivially_copyable_v<T>);
    const int world = comm.size();
    std::vector<std::vector<T>> out(static_cast<std::size_t>(world));
    out[static_cast<std::size_t>(comm.rank())].assign(mine.begin(), mine.end());
    if (world == 1) return out;
    obs::ScopedSpan span(comm.tracer(), comm.clock(), comm.rank(), "allgatherv",
                         "collective");
    span.attrs().bytes = static_cast<std::int64_t>(mine.size() * sizeof(T));

    // Ring of (size, data) pairs — sizes ride in the same message as a
    // leading header so the exchange stays one message per step.
    const RingStep ring = ring_neighbors(comm.rank(), world);
    const int tag = comm.fresh_tags(world - 1);
    for (int s = 0; s < world - 1; ++s) {
        const int send_block = (comm.rank() - s + world) % world;
        const int recv_block = (comm.rank() - s - 1 + world) % world;
        const auto& payload = out[static_cast<std::size_t>(send_block)];
        comm.send_vec<T>(ring.send_to, tag + s, payload);
        comm.recv_vec_into<T>(ring.recv_from, tag + s,
                              out[static_cast<std::size_t>(recv_block)]);
    }
    return out;
}

/// Flat gather of equal-size contributions to `root`; result meaningful on
/// root only (rank order concatenation).
template <typename T>
std::vector<T> gather(Communicator& comm, std::span<const T> mine, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    const int world = comm.size();
    obs::ScopedSpan span(comm.tracer(), comm.clock(), comm.rank(), "gather",
                         "collective");
    span.attrs().bytes = static_cast<std::int64_t>(mine.size() * sizeof(T));
    const int tag = comm.fresh_tags(1);
    if (comm.rank() != root) {
        comm.send_vec<T>(root, tag, mine);
        return {};
    }
    std::vector<T> out(mine.size() * static_cast<std::size_t>(world));
    std::memcpy(out.data() + mine.size() * static_cast<std::size_t>(root), mine.data(),
                mine.size() * sizeof(T));
    std::vector<T> part;
    for (int src = 0; src < world; ++src) {
        if (src == root) continue;
        comm.recv_vec_into<T>(src, tag, part);
        if (part.size() != mine.size()) throw std::runtime_error("gather: size mismatch");
        std::memcpy(out.data() + part.size() * static_cast<std::size_t>(src), part.data(),
                    part.size() * sizeof(T));
    }
    return out;
}

}  // namespace gtopk::collectives
