// Analytical time predictions for the collectives under the alpha-beta
// model — the right-hand column of the paper's Table I plus a few extras.
// Tests assert that the virtual-time cluster measures exactly these values
// for power-of-two worlds, which pins the simulator to the paper's math.
#pragma once

#include <cstdint>

#include "comm/network_model.hpp"

namespace gtopk::collectives {

/// Eq. 5 — ring DenseAllReduce of m elements on P workers:
/// 2(P-1) alpha + 2 (P-1)/P m beta.
double dense_allreduce_time_s(const comm::NetworkModel& net, int workers,
                              std::uint64_t elements);

/// Eq. 6 — TopKAllReduce via recursive-doubling AllGather of 2k elements
/// (k values + k indices) per worker: log(P) alpha + 2(P-1) k beta.
double topk_allreduce_time_s(const comm::NetworkModel& net, int workers,
                             std::uint64_t k);

/// Eq. 7 — gTopKAllReduce: logP rounds of 2k-element merges plus a
/// logP-round broadcast of 2k elements: 2 log(P) alpha + 4 k log(P) beta.
double gtopk_allreduce_time_s(const comm::NetworkModel& net, int workers,
                              std::uint64_t k);

/// Dissemination barrier: ceil(log2 P) zero-payload messages.
double barrier_time_s(const comm::NetworkModel& net, int workers);

/// Binomial broadcast of n elements: ceil(log2 P) (alpha + n beta).
double broadcast_time_s(const comm::NetworkModel& net, int workers,
                        std::uint64_t elements);

/// Flat-tree broadcast of n elements: (P-1)(alpha + n beta) at the root.
double flat_broadcast_time_s(const comm::NetworkModel& net, int workers,
                             std::uint64_t elements);

/// Recursive-doubling allgather with n elements contributed per rank:
/// log(P) alpha + (P-1) n beta.
double allgather_time_s(const comm::NetworkModel& net, int workers,
                        std::uint64_t elements_per_rank);

/// Rabenseifner allreduce: 2 log(P) alpha + 2 (P-1)/P m beta — ring
/// bandwidth at logarithmic latency (power-of-two P).
double rabenseifner_allreduce_time_s(const comm::NetworkModel& net, int workers,
                                     std::uint64_t elements);

}  // namespace gtopk::collectives
