#include "collectives/async.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>

namespace gtopk::collectives {

AsyncCollective::AsyncCollective(comm::Communicator& comm, Schedule sched,
                                 const char* span_name)
    : comm_(comm), sched_(std::move(sched)), span_name_(span_name) {
    if (sched_.world != comm_.size()) {
        throw std::invalid_argument("AsyncCollective: schedule world " +
                                    std::to_string(sched_.world) +
                                    " != communicator size " +
                                    std::to_string(comm_.size()));
    }
    if (sched_.absolute_tags) {
        throw std::invalid_argument(
            "AsyncCollective: absolute-tag schedules cannot share the async "
            "band");
    }
}

AsyncCollective::~AsyncCollective() {
    if (registered_) comm_.remove_progress_source(this);
}

void AsyncCollective::start() {
    if (state_ != State::Created) {
        throw std::logic_error("AsyncCollective: start() called twice");
    }
    tag_base_ = comm_.fresh_async_tags(sched_.tag_count);
    state_ = State::Started;
    span_v_begin_s_ = comm_.clock().now_s();
    span_h_begin_s_ = obs::host_now_s();
    // The issue time anchors the NIC timeline: nothing this handle sends
    // may start before the data existed (e.g. the bucket's gradient-ready
    // time the trainer advanced the clock to).
    dep_time_s_ = comm_.clock().now_s();
    last_event_s_ = dep_time_s_;
    comm_.add_progress_source(this);
    registered_ = true;
    pump_some();
}

bool AsyncCollective::pump_some() {
    if (state_ != State::Started) return false;
    const std::vector<CommOp>& program = sched_.rank_ops(comm_.rank());
    bool progressed = false;
    while (pc_ < program.size()) {
        const CommOp& op = program[pc_];
        if (op.kind == CommOp::Kind::Send) {
            // Buffered send: always runnable.
            op_send(op, tag_base_ + op.tag_offset);
        } else {
            std::optional<comm::Communicator::AsyncMsg> msg =
                comm_.try_recv_async(op.peer, tag_base_ + op.tag_offset);
            if (!msg) break;  // suspended until the message arrives
            dep_time_s_ = std::max(dep_time_s_, msg->arrival_s);
            last_event_s_ = std::max(last_event_s_, msg->arrival_s);
            op_recv(op, std::move(msg->payload));
        }
        ++pc_;
        progressed = true;
    }
    if (pc_ == program.size()) complete_();
    return progressed;
}

void AsyncCollective::send_async(const CommOp& op, int tag,
                                 std::vector<std::byte>&& payload) {
    const double end =
        comm_.send_async(op.peer, tag, std::move(payload), dep_time_s_);
    last_event_s_ = std::max(last_event_s_, end);
}

void AsyncCollective::send_async_copy(const CommOp& op, int tag,
                                      std::span<const std::byte> payload) {
    std::vector<std::byte> buf = comm_.buffer_pool().acquire(payload.size());
    if (!payload.empty()) {
        std::memcpy(buf.data(), payload.data(), payload.size());
    }
    send_async(op, tag, std::move(buf));
}

void AsyncCollective::complete_() {
    state_ = State::Done;
    if (registered_) {
        comm_.remove_progress_source(this);
        registered_ = false;
    }
    on_complete();
    if (obs::Tracer* tracer = comm_.tracer()) {
        // The handle's span overlaps its siblings', so it is recorded
        // manually: begin stamps from start(), end stamps now.
        obs::Span span;
        span.name = span_name_;
        span.category = "agg";
        span.rank = comm_.physical_rank();
        span.depth = tracer->enter(comm_.physical_rank());
        tracer->exit(comm_.physical_rank());
        span.v_begin_s = span_v_begin_s_;
        span.v_end_s = last_event_s_;
        span.h_begin_s = span_h_begin_s_;
        span.h_end_s = obs::host_now_s();
        span.attrs.tag = tag_base_;
        span.attrs.round = priority_;
        tracer->record(span);
    }
}

bool AsyncCollective::test() {
    if (state_ == State::Created) {
        throw std::logic_error("AsyncCollective: test() before start()");
    }
    if (state_ == State::Done) return true;
    comm_.pump_progress();
    return state_ == State::Done;
}

void AsyncCollective::wait() {
    if (state_ == State::Created) {
        throw std::logic_error("AsyncCollective: wait() before start()");
    }
    if (waited_) throw std::logic_error("AsyncCollective: wait() called twice");
    waited_ = true;

    const double timeout_s = comm_.recv_timeout_s();
    double idle_since = obs::host_now_s();
    int idle_polls = 0;
    while (state_ != State::Done) {
        // Pump EVERY in-flight handle, not just this one: our receive chain
        // may depend on a send buried in a sibling's program.
        const bool any = comm_.pump_progress();
        if (state_ == State::Done) break;
        if (any) {
            idle_since = obs::host_now_s();
            idle_polls = 0;
            continue;
        }
        // No handle made progress anywhere: honor the receive deadline so
        // a dropped message or dead peer surfaces as a typed CommError
        // (chaos/elastic runs route this into the regroup path).
        if (timeout_s > 0.0 && obs::host_now_s() - idle_since > timeout_s) {
            const std::vector<CommOp>& program = sched_.rank_ops(comm_.rank());
            const CommOp& blocked = program[pc_];
            throw comm::CommError(comm::CommErrorKind::RecvTimeout,
                                  comm_.physical_rank(), blocked.peer,
                                  tag_base_ + blocked.tag_offset, timeout_s);
        }
        // Back off gently: yield first, then sleep, so an idle wait does
        // not saturate a host core while peers compute.
        if (++idle_polls < 64) {
            std::this_thread::yield();
        } else {
            std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
    }

    // The single compute/comm synchronization point: the rank resumes at
    // the handle's completion on the NIC timeline (a no-op when compute
    // already ran past it — fully hidden communication). The jump is the
    // exposed wait, accounted exactly like a blocking recv's.
    const double before = comm_.clock().now_s();
    comm_.clock().advance_to(last_event_s_);
    comm_.stats().comm_time_s += comm_.clock().now_s() - before;
}

}  // namespace gtopk::collectives
