// Pure schedule computations for the collectives: who talks to whom at each
// round. Factored out of the templated algorithms so they can be unit-tested
// exhaustively (every rank, every round, every world size) without running
// threads.
//
// Two layers live here:
//
//  1. Per-step helpers (dissemination_step, binomial_bcast_plan, ...) — the
//     original pairing primitives.
//  2. The Schedule IR: each protocol emits its COMPLETE communication
//     schedule as per-rank programs of ordered send/recv ops
//     (round, peer, tag offset, payload bytes, element range). The live
//     templated implementations in collectives.hpp, core/aggregators.cpp
//     and ps/ps_trainer.cpp execute exactly these programs, and the static
//     model checker in src/analysis/ verifies the same programs — so the
//     analyzed spec cannot drift from the running code by construction.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace gtopk::collectives {

/// floor(log2(x)) for x >= 1.
int ilog2_floor(int x);

/// ceil(log2(x)) for x >= 1 (0 for x == 1).
int ilog2_ceil(int x);

bool is_power_of_two(int x);

/// Dissemination-barrier peer: at round r, rank sends to
/// (rank + 2^r) mod P and receives from (rank - 2^r) mod P.
struct DisseminationStep {
    int send_to;
    int recv_from;
};
DisseminationStep dissemination_step(int rank, int round, int world);

/// Binomial-tree broadcast relative to `root`. Returns for `rank` the list
/// of rounds in which it acts; parent is who it receives from (or -1 if it
/// already holds the data at that round's start).
struct BinomialBcastPlan {
    int recv_round = -1;   // round at which this rank receives (-1 for root)
    int recv_from = -1;    // source rank (-1 for root)
    std::vector<std::pair<int, int>> sends;  // (round, destination)
};
BinomialBcastPlan binomial_bcast_plan(int rank, int root, int world);

/// Ring neighbors.
struct RingStep {
    int send_to;
    int recv_from;
};
RingStep ring_neighbors(int rank, int world);

/// Block boundaries used by ring reduce-scatter/allgather for `n` elements
/// split across `world` blocks: block b covers [offsets[b], offsets[b+1]).
std::vector<std::size_t> ring_block_offsets(std::size_t n, int world);

/// gTop-k tree-merge schedule (the distance-doubling pairing of the paper's
/// Fig. 4): at round r (0-based), ranks that are multiples of 2^r pair up;
/// the one whose (rank >> r) is odd sends to rank - 2^r and goes idle; the
/// even one receives from rank + 2^r. Throws std::invalid_argument unless
/// `world` is a power of two (callers fold excess ranks first).
struct TreeMergeStep {
    enum class Role { Receive, Send, Idle };
    Role role = Role::Idle;
    int peer = -1;
};
TreeMergeStep tree_merge_step(int rank, int round, int world);

/// Number of rounds in the tree merge: ceil(log2(world)).
int tree_merge_rounds(int world);

// ---------------------------------------------------------------------------
// Schedule IR
// ---------------------------------------------------------------------------

enum class BcastAlgo { BinomialTree, FlatTree };
enum class AllgatherAlgo { RecursiveDoubling, Ring };
enum class AllreduceAlgo { Ring, RecursiveDoubling, Rabenseifner };

/// Payload size marker for ops whose byte count is data-dependent (sparse
/// wire payloads whose nnz the schedule cannot know). Such ops still pin
/// peers, tags and ordering; only the byte assertion is waived.
inline constexpr std::int64_t kVariableBytes = -1;

/// One point-to-point operation in a rank's program. Ops execute in program
/// order; sends are buffered (never block), recvs block until matched under
/// per-(source, tag) FIFO semantics — the Mailbox's guarantee.
struct CommOp {
    enum class Kind : std::uint8_t { Send, Recv };
    Kind kind = Kind::Send;
    /// Destination (Send) or source (Recv) rank.
    int peer = -1;
    /// Tag relative to the collective's fresh_tags block base (absolute tag
    /// when Schedule::absolute_tags is set, e.g. the PS user tags).
    int tag_offset = 0;
    /// Schedule round, for reporting and trace attribution.
    int round = 0;
    /// Protocol phase (e.g. 0 = reduce-scatter, 1 = allgather). Executors
    /// branch on it to pick the recv combiner (add vs copy).
    int phase = 0;
    /// Exact payload bytes, or kVariableBytes for data-dependent payloads.
    std::int64_t bytes = kVariableBytes;
    /// Protocol operands: the element range [a, b) of the caller's buffer
    /// this op touches (block protocols), or the block index `a` with
    /// b = a + 1 (allgatherv, whose element offsets are size-dependent).
    /// Executors address payloads exclusively through these, so the
    /// generator — not the implementation — decides what moves where.
    std::int64_t a = 0;
    std::int64_t b = 0;
};

/// A full collective schedule: one ordered op program per rank plus the
/// size of the fresh-tag block the collective consumes.
struct Schedule {
    std::string proto;
    int world = 1;
    /// Number of fresh tags the collective reserves (0 for world == 1,
    /// where implementations return before touching the communicator).
    int tag_count = 0;
    /// When set, CommOp::tag_offset holds absolute user tags (< the fresh
    /// base) instead of offsets into a fresh block — the PS protocol.
    bool absolute_tags = false;
    std::vector<std::vector<CommOp>> ranks;  // index == rank

    const std::vector<CommOp>& rank_ops(int rank) const {
        return ranks[static_cast<std::size_t>(rank)];
    }
};

/// Dissemination barrier: ceil(log2 P) rounds of 1-byte tokens.
Schedule barrier_schedule(int world);

/// Broadcast of `bytes` payload bytes from `root`. `bytes` is metadata only
/// (control structure is size-independent); pass kVariableBytes when the
/// size is not known at the call site (non-root ranks).
Schedule broadcast_schedule(int world, int root, std::int64_t bytes,
                            BcastAlgo algo = BcastAlgo::BinomialTree);

/// Binomial-tree sum-reduction of `bytes` payload bytes to `root`.
Schedule reduce_schedule(int world, int root, std::int64_t bytes);

/// Ring allreduce of `elems` elements of `elem_bytes` each: phase 0 is the
/// reduce-scatter (recv combiner: add), phase 1 the allgather (copy).
/// Op [a, b) ranges are element offsets into the caller's buffer.
Schedule allreduce_ring_schedule(int world, std::int64_t elems,
                                 std::int64_t elem_bytes);

/// Recursive-doubling allreduce (power-of-two world) of `elems` elements.
Schedule allreduce_recursive_doubling_schedule(int world, std::int64_t elems,
                                               std::int64_t elem_bytes);

/// Rabenseifner allreduce (power-of-two world, elems divisible by world):
/// phase 0 recursive-halving reduce-scatter (recv combiner: add into
/// [a, b)), phase 1 recursive-doubling allgather (copy into [a, b)).
Schedule allreduce_rabenseifner_schedule(int world, std::int64_t elems,
                                         std::int64_t elem_bytes);

/// Allgather with `elems_per_rank` elements contributed per rank. Mirrors
/// the implementation's fallback: RecursiveDoubling on non-power-of-two
/// worlds degrades to the ring. [a, b) ranges are element offsets into the
/// size P*elems_per_rank output buffer.
Schedule allgather_schedule(int world, std::int64_t elems_per_rank,
                            std::int64_t elem_bytes,
                            AllgatherAlgo algo = AllgatherAlgo::RecursiveDoubling);

/// Allgatherv ring with per-rank payload bytes. `bytes_per_rank` may be
/// empty (all payloads kVariableBytes). Op operands are BLOCK indices
/// (a = block, b = a + 1), since element offsets depend on unknown sizes.
Schedule allgatherv_schedule(int world, std::span<const std::int64_t> bytes_per_rank);

/// Telemetry-plane stats allgather (obs/telemetry.hpp): a ring allgather of
/// one fixed-size `stats_bytes` block per rank, tagged on the reserved
/// absolute band comm::kTagTelemetryBase + round instead of a fresh-tag
/// block. Keeping the exchange off the SPMD fresh-tag cursor means enabling
/// telemetry cannot shift any other collective's tag block — telemetry
/// on/off is bit-identical by construction. Op operands are BLOCK indices
/// (a = contributing logical rank, b = a + 1), like allgatherv.
Schedule telemetry_allgather_schedule(int world, std::int64_t stats_bytes);

/// Flat gather of `bytes` per rank to `root`; root receives in ascending
/// source order (a = contributing rank's block index).
Schedule gather_schedule(int world, int root, std::int64_t bytes);

/// gTop-k merge phase of Algorithm 3 (core/aggregators.cpp): fold ranks
/// beyond the largest power-of-two base into the base (phase 0, tag 0),
/// then the distance-doubling tree merge to rank 0 (phase 1, tags
/// 1..rounds). `wire_bytes` is the sparse wire payload size (16 + 8k for an
/// exactly-k-sparse gradient), or kVariableBytes. The subsequent broadcast
/// of rank 0's result is broadcast_schedule — compose them for the full
/// collective.
Schedule gtopk_merge_schedule(int world, std::int64_t wire_bytes);

/// Concatenate schedules executed back-to-back by the same SPMD ranks into
/// one: per-rank programs append in order and tag offsets shift by the
/// running tag_count, exactly like consecutive fresh_tags blocks. All parts
/// must share `world` and must not use absolute tags.
Schedule concat_schedules(std::string proto, std::span<const Schedule> parts);

/// Map a LOGICAL-world schedule onto the surviving PHYSICAL ranks of a
/// larger world — the static mirror of what Communicator::set_view does at
/// runtime after a membership regroup. `sched.world` must equal
/// survivors.size(); `survivors` are strictly ascending physical ranks
/// < physical_world. Logical rank i's program lands on physical rank
/// survivors[i] with every peer translated; dead ranks get empty programs.
/// Verifying the result (analysis/verify.hpp) therefore certifies the
/// exact op/peer/tag structure the regrouped collectives execute.
Schedule remap_schedule(const Schedule& sched, std::span<const int> survivors,
                        int physical_world);

}  // namespace gtopk::collectives
