// Pure schedule computations for the collectives: who talks to whom at each
// round. Factored out of the templated algorithms so they can be unit-tested
// exhaustively (every rank, every round, every world size) without running
// threads.
#pragma once

#include <vector>

namespace gtopk::collectives {

/// floor(log2(x)) for x >= 1.
int ilog2_floor(int x);

/// ceil(log2(x)) for x >= 1 (0 for x == 1).
int ilog2_ceil(int x);

bool is_power_of_two(int x);

/// Dissemination-barrier peer: at round r, rank sends to
/// (rank + 2^r) mod P and receives from (rank - 2^r) mod P.
struct DisseminationStep {
    int send_to;
    int recv_from;
};
DisseminationStep dissemination_step(int rank, int round, int world);

/// Binomial-tree broadcast relative to `root`. Returns for `rank` the list
/// of rounds in which it acts; parent is who it receives from (or -1 if it
/// already holds the data at that round's start).
struct BinomialBcastPlan {
    int recv_round = -1;   // round at which this rank receives (-1 for root)
    int recv_from = -1;    // source rank (-1 for root)
    std::vector<std::pair<int, int>> sends;  // (round, destination)
};
BinomialBcastPlan binomial_bcast_plan(int rank, int root, int world);

/// Ring neighbors.
struct RingStep {
    int send_to;
    int recv_from;
};
RingStep ring_neighbors(int rank, int world);

/// Block boundaries used by ring reduce-scatter/allgather for `n` elements
/// split across `world` blocks: block b covers [offsets[b], offsets[b+1]).
std::vector<std::size_t> ring_block_offsets(std::size_t n, int world);

/// gTop-k tree-merge schedule (the distance-doubling pairing of the paper's
/// Fig. 4): at round r (0-based), ranks that are multiples of 2^r pair up;
/// the one whose (rank >> r) is odd sends to rank - 2^r and goes idle; the
/// even one receives from rank + 2^r. Only defined for power-of-two world.
struct TreeMergeStep {
    enum class Role { Receive, Send, Idle };
    Role role = Role::Idle;
    int peer = -1;
};
TreeMergeStep tree_merge_step(int rank, int round, int world);

/// Number of rounds in the tree merge: ceil(log2(world)).
int tree_merge_rounds(int world);

}  // namespace gtopk::collectives
