// AsyncCollective: non-blocking execution of a Schedule's op program, so
// multiple collectives can be in flight on one Communicator at once — the
// engine behind layer-wise gTop-k communication/computation overlap
// (DESIGN.md §14).
//
// A handle wraps one generated Schedule (schedule.hpp) and executes its
// per-rank op program INCREMENTALLY: start() reserves a private tag band in
// the async tag space (comm/tags.hpp) and runs ops until the first
// unmatched receive; test()/wait() resume from that point. Sends are
// buffered (never block), so a pump always drains every runnable op; a
// receive op suspends the program until its message is polled in via
// Communicator::try_recv.
//
// Cross-handle progress: a handle registers itself as a ProgressSource on
// start(), and wait() pumps EVERY registered source (not just itself)
// between polls — handle A's receive chain can depend on this rank
// reaching a send inside handle B's program, and pump-all is what makes
// that composition deadlock-free (tools/commcheck --concurrent certifies
// the same executor model statically). The pump order is ascending
// priority(), which is how the P3-style scheduler lets front-layer buckets
// preempt back-layer traffic.
//
// Virtual-time model: async transfers ride a per-rank NIC timeline
// (Communicator::send_async / try_recv_async) that runs CONCURRENTLY with
// the rank's virtual clock — issuing and pumping never advance the clock,
// so modeled communication hides under modeled compute. Within a handle,
// sends start no earlier than the arrivals they depend on; wait() is the
// one synchronization point, advancing the clock to the handle's last
// modeled event.
//
// Composition: the engine talks only to the Communicator's message
// surface, so ReliableTransport, chaos injection, conformance recording and
// telemetry all compose unchanged. wait() honors the communicator's
// receive deadline: if no registered source makes progress for
// recv_timeout_s host seconds, it throws CommError(RecvTimeout) naming the
// blocked edge — which is what routes overlapped elastic runs into the
// regroup path.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "collectives/schedule.hpp"
#include "comm/communicator.hpp"
#include "obs/trace.hpp"

namespace gtopk::collectives {

class AsyncCollective : public comm::ProgressSource {
public:
    enum class State {
        Created,  // constructed, no tags reserved, no ops run
        Started,  // tag band reserved, op program (partially) executing
        Done,     // program complete, result available
    };

    /// `sched` must target comm.size() ranks; `span_name` (static storage)
    /// names the per-handle trace span covering start() → completion.
    AsyncCollective(comm::Communicator& comm, Schedule sched,
                    const char* span_name);
    ~AsyncCollective() override;

    AsyncCollective(const AsyncCollective&) = delete;
    AsyncCollective& operator=(const AsyncCollective&) = delete;

    /// Reserve this handle's async tag band, register as a progress source
    /// and run every immediately-runnable op. Throws on double start.
    void start();

    /// Non-blocking progress: pump every registered source once and report
    /// whether THIS handle completed. Throws if not started.
    bool test();

    /// Drive to completion, pumping all registered sources. Throws
    /// std::logic_error before start() or on a second wait();
    /// comm::CommError(RecvTimeout) when the communicator's receive
    /// deadline expires with no global progress.
    void wait();

    State state() const { return state_; }
    bool done() const { return state_ == State::Done; }

    /// Base of this handle's private tag band (valid once started).
    int tag_base() const { return tag_base_; }

    /// Latest modeled event of this handle (send end / arrival consumed) —
    /// its completion time on the NIC timeline. wait() advances the rank's
    /// virtual clock to it, which is the ONLY point where the concurrent
    /// communication timeline re-synchronizes with modeled compute.
    double last_event_s() const { return last_event_s_; }

    /// Drain priority: lower = served first by pump_progress (P3 rule).
    void set_priority(int priority) { priority_ = priority; }
    int priority() const { return priority_; }
    int pump_priority() const override { return priority_; }

    const Schedule& schedule() const { return sched_; }

    bool pump_some() override;

protected:
    comm::Communicator& comm() { return comm_; }

    /// Timed sends for op_send implementations: the payload rides the
    /// rank's NIC timeline (Communicator::send_async) starting no earlier
    /// than every arrival this handle has consumed (data dependency) or its
    /// issue time, and the handle's completion frontier advances to the
    /// transfer's end. The copying overload serializes a reusable buffer
    /// (e.g. a broadcast root fanning out the same wire image).
    void send_async(const CommOp& op, int tag, std::vector<std::byte>&& payload);
    void send_async_copy(const CommOp& op, int tag,
                         std::span<const std::byte> payload);

    /// Execute one Send op: subclass serializes its payload and hands it to
    /// send_async/send_async_copy on `tag` (absolute). Called in program
    /// order.
    virtual void op_send(const CommOp& op, int tag) = 0;

    /// Consume one matched Recv op's payload, in program order.
    virtual void op_recv(const CommOp& op, std::vector<std::byte> payload) = 0;

    /// Called exactly once when the op program finishes (also for empty
    /// programs, e.g. world == 1): finalize the result.
    virtual void on_complete() {}

private:
    void complete_();

    comm::Communicator& comm_;
    Schedule sched_;
    const char* span_name_;
    State state_ = State::Created;
    bool waited_ = false;
    bool registered_ = false;
    int tag_base_ = -1;
    int priority_ = 0;
    std::size_t pc_ = 0;  // next op index in this rank's program
    /// Earliest modeled time this handle's next send may start: its issue
    /// time, raised by every arrival it consumes (data dependency).
    double dep_time_s_ = 0.0;
    /// Latest modeled event (see last_event_s()).
    double last_event_s_ = 0.0;
    // Manual span stamps: the handle's span overlaps other handles' spans,
    // so it cannot be a ScopedSpan on the stack.
    double span_v_begin_s_ = 0.0;
    double span_h_begin_s_ = 0.0;
};

}  // namespace gtopk::collectives
