// SyntheticImageDataset — the Cifar-10 / ImageNet stand-in.
//
// Each class is a random prototype image; a sample is its class prototype
// plus Gaussian pixel noise. Every sample is a pure function of
// (dataset seed, sample index): no storage, any index can be materialized
// on any worker, and runs are bit-reproducible. The classification task is
// hard enough to show convergence differences between optimizers (noise
// keeps the Bayes error non-trivial) yet learnable by the small model zoo.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/model.hpp"
#include "util/rng.hpp"

namespace gtopk::data {

class SyntheticImageDataset {
public:
    struct Config {
        std::int64_t classes = 10;
        std::int64_t channels = 3;
        std::int64_t image_size = 16;  // square
        float noise_std = 0.8f;
        std::int64_t train_size = 8192;
        std::int64_t test_size = 1024;
    };

    SyntheticImageDataset(const Config& config, std::uint64_t seed);

    const Config& config() const { return config_; }
    std::int64_t feature_dim() const {
        return config_.channels * config_.image_size * config_.image_size;
    }

    /// Label of sample `index` (same for train/test spaces; test indices are
    /// train_size..train_size+test_size-1).
    std::int32_t label_of(std::int64_t index) const;

    /// Batch shaped [N, C, H, W] for CNNs.
    nn::Batch batch_images(std::span<const std::int64_t> indices) const;

    /// Batch shaped [N, D] for MLPs.
    nn::Batch batch_flat(std::span<const std::int64_t> indices) const;

private:
    void write_sample(std::int64_t index, float* out) const;

    Config config_;
    std::uint64_t seed_;
    std::vector<float> prototypes_;  // [classes, D]
};

}  // namespace gtopk::data
