// ShardedSampler: deterministic data-parallel mini-batch index streams.
//
// The train index space [0, train_size) is split into P contiguous shards,
// one per worker (the paper's data parallelism). batch_indices(step, rank)
// is a pure function, so any rank can be replayed independently and the
// whole distributed run is reproducible. Test indices live after the train
// space: [train_size, train_size + test_size).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace gtopk::data {

class ShardedSampler {
public:
    ShardedSampler(std::int64_t train_size, std::int64_t test_size, int world_size,
                   std::uint64_t seed);

    /// `batch` uniform draws (with replacement) from this rank's shard for
    /// global step `step`.
    std::vector<std::int64_t> batch_indices(std::int64_t step, int rank,
                                            std::int64_t batch) const;

    /// A fixed evaluation slice of the test space (same on every rank).
    std::vector<std::int64_t> test_indices(std::int64_t count) const;

    std::int64_t shard_begin(int rank) const;
    std::int64_t shard_end(int rank) const;

private:
    std::int64_t train_size_;
    std::int64_t test_size_;
    int world_size_;
    std::uint64_t seed_;
};

}  // namespace gtopk::data
