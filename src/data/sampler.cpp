#include "data/sampler.hpp"

#include <algorithm>
#include <stdexcept>

namespace gtopk::data {

ShardedSampler::ShardedSampler(std::int64_t train_size, std::int64_t test_size,
                               int world_size, std::uint64_t seed)
    : train_size_(train_size), test_size_(test_size), world_size_(world_size), seed_(seed) {
    if (world_size <= 0) throw std::invalid_argument("world_size must be positive");
    if (train_size < world_size) {
        throw std::invalid_argument("train_size must cover every shard");
    }
}

std::int64_t ShardedSampler::shard_begin(int rank) const {
    return train_size_ * rank / world_size_;
}

std::int64_t ShardedSampler::shard_end(int rank) const {
    return train_size_ * (rank + 1) / world_size_;
}

std::vector<std::int64_t> ShardedSampler::batch_indices(std::int64_t step, int rank,
                                                        std::int64_t batch) const {
    const std::int64_t lo = shard_begin(rank);
    const std::int64_t span = shard_end(rank) - lo;
    util::Xoshiro256 rng = util::Xoshiro256(seed_).fork(
        static_cast<std::uint64_t>(step) * 0x9E37u + static_cast<std::uint64_t>(rank));
    std::vector<std::int64_t> out(static_cast<std::size_t>(batch));
    for (auto& idx : out) {
        idx = lo + static_cast<std::int64_t>(
                       rng.next_below(static_cast<std::uint64_t>(span)));
    }
    return out;
}

std::vector<std::int64_t> ShardedSampler::test_indices(std::int64_t count) const {
    count = std::min(count, test_size_);
    std::vector<std::int64_t> out(static_cast<std::size_t>(count));
    for (std::int64_t i = 0; i < count; ++i) out[static_cast<std::size_t>(i)] = train_size_ + i;
    return out;
}

}  // namespace gtopk::data
