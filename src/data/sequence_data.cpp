#include "data/sequence_data.hpp"

#include <cmath>
#include <stdexcept>

namespace gtopk::data {

SequenceDataset::SequenceDataset(const Config& config, std::uint64_t seed)
    : config_(config), seed_(seed) {
    if (config_.vocab < 2) throw std::invalid_argument("SequenceDataset: vocab >= 2");
    const std::int64_t v = config_.vocab;
    util::Xoshiro256 rng = util::Xoshiro256(seed).fork(0x5E90);
    cumulative_.resize(static_cast<std::size_t>(v * v));
    for (std::int64_t row = 0; row < v; ++row) {
        // Exponentiated random logits: a few transitions dominate each row.
        std::vector<double> weights(static_cast<std::size_t>(v));
        double total = 0.0;
        for (std::int64_t col = 0; col < v; ++col) {
            const double logit = config_.peakedness * rng.next_double();
            weights[static_cast<std::size_t>(col)] = std::exp(logit);
            total += weights[static_cast<std::size_t>(col)];
        }
        double acc = 0.0;
        for (std::int64_t col = 0; col < v; ++col) {
            acc += weights[static_cast<std::size_t>(col)] / total;
            cumulative_[static_cast<std::size_t>(row * v + col)] = acc;
        }
        cumulative_[static_cast<std::size_t>(row * v + v - 1)] = 1.0;
    }
}

std::int32_t SequenceDataset::step(std::int32_t state, util::Xoshiro256& rng) const {
    const std::int64_t v = config_.vocab;
    const double u = rng.next_double();
    const double* row = cumulative_.data() + static_cast<std::int64_t>(state) * v;
    for (std::int64_t col = 0; col < v; ++col) {
        if (u < row[col]) return static_cast<std::int32_t>(col);
    }
    return static_cast<std::int32_t>(v - 1);
}

nn::Batch SequenceDataset::batch(std::span<const std::int64_t> indices) const {
    const auto n = static_cast<std::int64_t>(indices.size());
    const std::int64_t t_len = config_.seq_len;
    nn::Batch batch;
    batch.x = nn::Tensor({n, t_len});
    batch.targets.resize(static_cast<std::size_t>(n * t_len));
    for (std::int64_t i = 0; i < n; ++i) {
        util::Xoshiro256 rng = util::Xoshiro256(seed_).fork(
            static_cast<std::uint64_t>(indices[static_cast<std::size_t>(i)]));
        auto token = static_cast<std::int32_t>(
            rng.next_below(static_cast<std::uint64_t>(config_.vocab)));
        for (std::int64_t t = 0; t < t_len; ++t) {
            batch.x.at2(i, t) = static_cast<float>(token);
            token = step(token, rng);
            batch.targets[static_cast<std::size_t>(i * t_len + t)] = token;
        }
    }
    return batch;
}

double SequenceDataset::transition_entropy() const {
    const std::int64_t v = config_.vocab;
    double total = 0.0;
    for (std::int64_t row = 0; row < v; ++row) {
        double prev = 0.0;
        for (std::int64_t col = 0; col < v; ++col) {
            const double p = cumulative_[static_cast<std::size_t>(row * v + col)] - prev;
            prev = cumulative_[static_cast<std::size_t>(row * v + col)];
            if (p > 0.0) total -= p * std::log(p);
        }
    }
    return total / static_cast<double>(v);
}

}  // namespace gtopk::data
