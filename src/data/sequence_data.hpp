// SequenceDataset — the Penn Treebank stand-in for the LSTM experiments.
//
// Sequences are walks of a fixed random Markov chain whose rows are peaked
// (low-entropy) distributions, so a recurrent model can learn genuine
// structure and the cross-entropy falls well below log(V). As with the
// image dataset, each sequence is a pure function of (seed, index).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/model.hpp"
#include "util/rng.hpp"

namespace gtopk::data {

class SequenceDataset {
public:
    struct Config {
        std::int64_t vocab = 32;
        std::int64_t seq_len = 16;  // T; samples carry T+1 tokens
        /// Concentration of the transition rows; larger = more predictable.
        double peakedness = 8.0;
        std::int64_t train_size = 8192;
        std::int64_t test_size = 1024;
    };

    SequenceDataset(const Config& config, std::uint64_t seed);

    const Config& config() const { return config_; }

    /// Batch with x = [N, T] token ids (as floats) and targets = the next
    /// token at each of the N*T positions, row-major.
    nn::Batch batch(std::span<const std::int64_t> indices) const;

    /// Entropy rate proxy: mean per-row entropy of the chain in nats — a
    /// lower bound on achievable LM loss, used by tests.
    double transition_entropy() const;

private:
    std::int32_t step(std::int32_t state, util::Xoshiro256& rng) const;

    Config config_;
    std::uint64_t seed_;
    std::vector<double> cumulative_;  // [V, V] row-wise CDF of transitions
};

}  // namespace gtopk::data
