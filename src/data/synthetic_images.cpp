#include "data/synthetic_images.hpp"

namespace gtopk::data {

SyntheticImageDataset::SyntheticImageDataset(const Config& config, std::uint64_t seed)
    : config_(config), seed_(seed) {
    util::Xoshiro256 proto_rng = util::Xoshiro256(seed).fork(0xC1A55);
    prototypes_.resize(static_cast<std::size_t>(config_.classes * feature_dim()));
    for (float& v : prototypes_) {
        v = static_cast<float>(proto_rng.next_gaussian());
    }
}

std::int32_t SyntheticImageDataset::label_of(std::int64_t index) const {
    util::Xoshiro256 rng = util::Xoshiro256(seed_).fork(static_cast<std::uint64_t>(index));
    return static_cast<std::int32_t>(
        rng.next_below(static_cast<std::uint64_t>(config_.classes)));
}

void SyntheticImageDataset::write_sample(std::int64_t index, float* out) const {
    util::Xoshiro256 rng = util::Xoshiro256(seed_).fork(static_cast<std::uint64_t>(index));
    const auto label = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(config_.classes)));
    const float* proto = prototypes_.data() + label * feature_dim();
    for (std::int64_t i = 0; i < feature_dim(); ++i) {
        out[i] = proto[i] +
                 config_.noise_std * static_cast<float>(rng.next_gaussian());
    }
}

nn::Batch SyntheticImageDataset::batch_images(std::span<const std::int64_t> indices) const {
    const auto n = static_cast<std::int64_t>(indices.size());
    nn::Batch batch;
    batch.x = nn::Tensor({n, config_.channels, config_.image_size, config_.image_size});
    batch.targets.resize(indices.size());
    for (std::int64_t i = 0; i < n; ++i) {
        write_sample(indices[static_cast<std::size_t>(i)],
                     batch.x.raw() + i * feature_dim());
        batch.targets[static_cast<std::size_t>(i)] =
            label_of(indices[static_cast<std::size_t>(i)]);
    }
    return batch;
}

nn::Batch SyntheticImageDataset::batch_flat(std::span<const std::int64_t> indices) const {
    nn::Batch batch = batch_images(indices);
    const std::int64_t n = batch.x.dim(0);
    batch.x = batch.x.reshaped({n, feature_dim()});
    return batch;
}

}  // namespace gtopk::data
