// 2-D batch normalization (per-channel over N, H, W), with learnable scale
// gamma and shift beta, batch statistics in training and running averages
// in evaluation — the normalization real ResNets rely on.
//
// Distributed caveat (documented, tested): statistics are computed over the
// LOCAL mini-batch, as in the paper's per-GPU PyTorch BatchNorm. Gradients
// are still aggregated globally, and running averages evolve identically on
// all replicas because inputs are rank-sharded but updates are shared, so
// replicas only agree if eval uses each replica's own running stats — the
// integration tests train and evaluate exactly that way.
#pragma once

#include "nn/layer.hpp"

namespace gtopk::nn {

class BatchNorm2d final : public Layer {
public:
    explicit BatchNorm2d(std::int64_t channels, float eps = 1e-5f,
                         float momentum = 0.1f);

    Tensor forward(const Tensor& x, bool training) override;
    Tensor backward(const Tensor& dy) override;
    void collect_params(std::vector<ParamView>& out) override;
    std::string name() const override { return "BatchNorm2d"; }

    std::span<const float> running_mean() const { return running_mean_; }
    std::span<const float> running_var() const { return running_var_; }

private:
    std::int64_t channels_;
    float eps_;
    float momentum_;
    std::vector<float> gamma_, beta_;
    std::vector<float> dgamma_, dbeta_;
    std::vector<float> running_mean_, running_var_;
    // Training-time caches for backward.
    Tensor cached_xhat_;
    std::vector<float> cached_mean_, cached_inv_std_;
    std::int64_t cached_count_ = 0;  // N*H*W per channel
};

}  // namespace gtopk::nn
