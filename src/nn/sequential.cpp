#include "nn/sequential.hpp"

namespace gtopk::nn {

Tensor Sequential::forward(const Tensor& x, bool training) {
    Tensor h = x;
    for (auto& layer : layers_) h = layer->forward(h, training);
    return h;
}

Tensor Sequential::backward(const Tensor& dy) {
    Tensor g = dy;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
        g = (*it)->backward(g);
    }
    return g;
}

void Sequential::collect_params(std::vector<ParamView>& out) {
    for (auto& layer : layers_) layer->collect_params(out);
}

}  // namespace gtopk::nn
