#include "nn/init.hpp"

#include <cmath>

namespace gtopk::nn {

void kaiming_normal(std::span<float> w, std::size_t fan_in, util::Xoshiro256& rng) {
    const float std_dev = std::sqrt(2.0f / static_cast<float>(fan_in));
    for (float& x : w) x = static_cast<float>(rng.next_gaussian()) * std_dev;
}

void xavier_uniform(std::span<float> w, std::size_t fan_in, std::size_t fan_out,
                    util::Xoshiro256& rng) {
    const float limit = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
    for (float& x : w) x = rng.next_uniform(-limit, limit);
}

void uniform_init(std::span<float> w, float scale, util::Xoshiro256& rng) {
    for (float& x : w) x = rng.next_uniform(-scale, scale);
}

}  // namespace gtopk::nn
