#include "nn/layer.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace gtopk::nn {

std::size_t param_count(const std::vector<ParamView>& params) {
    std::size_t n = 0;
    for (const auto& p : params) n += p.value->size();
    return n;
}

void zero_grads(const std::vector<ParamView>& params) {
    for (const auto& p : params) {
        std::fill(p.grad->begin(), p.grad->end(), 0.0f);
    }
}

std::vector<float> flatten_values(const std::vector<ParamView>& params) {
    std::vector<float> flat;
    flat.reserve(param_count(params));
    for (const auto& p : params) {
        flat.insert(flat.end(), p.value->begin(), p.value->end());
    }
    return flat;
}

std::vector<float> flatten_grads(const std::vector<ParamView>& params) {
    std::vector<float> flat;
    flat.reserve(param_count(params));
    for (const auto& p : params) {
        flat.insert(flat.end(), p.grad->begin(), p.grad->end());
    }
    return flat;
}

void set_values(const std::vector<ParamView>& params, std::span<const float> flat) {
    if (flat.size() != param_count(params)) {
        throw std::invalid_argument("set_values: size mismatch");
    }
    std::size_t off = 0;
    for (const auto& p : params) {
        std::memcpy(p.value->data(), flat.data() + off, p.value->size() * sizeof(float));
        off += p.value->size();
    }
}

void apply_delta(const std::vector<ParamView>& params, std::span<const float> delta) {
    if (delta.size() != param_count(params)) {
        throw std::invalid_argument("apply_delta: size mismatch");
    }
    std::size_t off = 0;
    for (const auto& p : params) {
        float* w = p.value->data();
        const float* d = delta.data() + off;
        for (std::size_t i = 0; i < p.value->size(); ++i) w[i] += d[i];
        off += p.value->size();
    }
}

}  // namespace gtopk::nn
