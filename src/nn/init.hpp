// Weight initialization. Deterministic given the RNG so that every worker
// replica starts from identical parameters (a precondition of S-SGD).
#pragma once

#include <span>

#include "util/rng.hpp"

namespace gtopk::nn {

/// Kaiming/He normal: N(0, sqrt(2 / fan_in)) — the standard for ReLU nets.
void kaiming_normal(std::span<float> w, std::size_t fan_in, util::Xoshiro256& rng);

/// Xavier/Glorot uniform: U(-L, L), L = sqrt(6 / (fan_in + fan_out)).
void xavier_uniform(std::span<float> w, std::size_t fan_in, std::size_t fan_out,
                    util::Xoshiro256& rng);

/// U(-scale, scale) — used for LSTM and embedding tables.
void uniform_init(std::span<float> w, float scale, util::Xoshiro256& rng);

}  // namespace gtopk::nn
