// Fully connected layer: y = x W^T + b, x: [N, in], W: [out, in], b: [out].
#pragma once

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace gtopk::nn {

class Linear final : public Layer {
public:
    Linear(std::int64_t in_features, std::int64_t out_features, util::Xoshiro256& rng);

    Tensor forward(const Tensor& x, bool training) override;
    Tensor backward(const Tensor& dy) override;
    void collect_params(std::vector<ParamView>& out) override;
    std::string name() const override { return "Linear"; }

    std::int64_t in_features() const { return in_; }
    std::int64_t out_features() const { return out_; }

private:
    std::int64_t in_;
    std::int64_t out_;
    std::vector<float> w_;   // [out, in]
    std::vector<float> b_;   // [out]
    std::vector<float> dw_;
    std::vector<float> db_;
    Tensor cached_x_;
};

}  // namespace gtopk::nn
