// Max pooling, NCHW, square window, stride == window (the common case the
// models here need).
#pragma once

#include "nn/layer.hpp"

namespace gtopk::nn {

class MaxPool2d final : public Layer {
public:
    explicit MaxPool2d(std::int64_t window);

    Tensor forward(const Tensor& x, bool training) override;
    Tensor backward(const Tensor& dy) override;
    std::string name() const override { return "MaxPool2d"; }

private:
    std::int64_t window_;
    std::vector<std::int64_t> argmax_;  // flat input index of each output max
    std::vector<std::int64_t> in_shape_;
};

}  // namespace gtopk::nn
