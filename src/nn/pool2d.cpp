#include "nn/pool2d.hpp"

#include <limits>
#include <stdexcept>

namespace gtopk::nn {

MaxPool2d::MaxPool2d(std::int64_t window) : window_(window) {
    if (window <= 0) throw std::invalid_argument("MaxPool2d: window must be positive");
}

Tensor MaxPool2d::forward(const Tensor& x, bool training) {
    (void)training;  // argmax is needed in both modes; cheap enough to keep
    if (x.rank() != 4) throw std::invalid_argument("MaxPool2d: expected NCHW");
    const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
    if (h % window_ != 0 || w % window_ != 0) {
        throw std::invalid_argument("MaxPool2d: dims must divide window");
    }
    const std::int64_t oh = h / window_, ow = w / window_;
    in_shape_ = x.shape();
    Tensor y({n, c, oh, ow});
    argmax_.assign(static_cast<std::size_t>(y.numel()), 0);
    std::size_t out_pos = 0;
    for (std::int64_t b = 0; b < n; ++b) {
        for (std::int64_t ch = 0; ch < c; ++ch) {
            for (std::int64_t i = 0; i < oh; ++i) {
                for (std::int64_t j = 0; j < ow; ++j, ++out_pos) {
                    float best = -std::numeric_limits<float>::infinity();
                    std::int64_t best_idx = 0;
                    for (std::int64_t di = 0; di < window_; ++di) {
                        for (std::int64_t dj = 0; dj < window_; ++dj) {
                            const std::int64_t hi = i * window_ + di;
                            const std::int64_t wj = j * window_ + dj;
                            const float v = x.at4(b, ch, hi, wj);
                            if (v > best) {
                                best = v;
                                best_idx = ((b * c + ch) * h + hi) * w + wj;
                            }
                        }
                    }
                    y[out_pos] = best;
                    argmax_[out_pos] = best_idx;
                }
            }
        }
    }
    return y;
}

Tensor MaxPool2d::backward(const Tensor& dy) {
    Tensor dx(in_shape_);
    for (std::size_t i = 0; i < argmax_.size(); ++i) {
        dx[static_cast<std::size_t>(argmax_[i])] += dy[i];
    }
    return dx;
}

}  // namespace gtopk::nn
