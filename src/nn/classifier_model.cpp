#include "nn/classifier_model.hpp"

#include "nn/loss.hpp"

namespace gtopk::nn {

ClassifierModel::ClassifierModel(std::unique_ptr<Sequential> net) : net_(std::move(net)) {
    net_->collect_params(params_);
}

double ClassifierModel::train_step_gradients(const Batch& batch) {
    zero_grads(params_);
    Tensor logits = net_->forward(batch.x, /*training=*/true);
    LossResult lr = softmax_cross_entropy(logits, batch.targets);
    net_->backward(lr.dlogits);
    return lr.loss;
}

double ClassifierModel::eval_loss(const Batch& batch) {
    Tensor logits = net_->forward(batch.x, /*training=*/false);
    return softmax_cross_entropy(logits, batch.targets).loss;
}

double ClassifierModel::eval_accuracy(const Batch& batch) {
    Tensor logits = net_->forward(batch.x, /*training=*/false);
    return accuracy(logits, batch.targets);
}

}  // namespace gtopk::nn
