// Sequential container: runs layers in order forward, reverse backward.
#pragma once

#include "nn/layer.hpp"

namespace gtopk::nn {

class Sequential final : public Layer {
public:
    Sequential() = default;

    Sequential& add(LayerPtr layer) {
        layers_.push_back(std::move(layer));
        return *this;
    }

    template <typename L, typename... Args>
    Sequential& emplace(Args&&... args) {
        layers_.push_back(std::make_unique<L>(std::forward<Args>(args)...));
        return *this;
    }

    Tensor forward(const Tensor& x, bool training) override;
    Tensor backward(const Tensor& dy) override;
    void collect_params(std::vector<ParamView>& out) override;
    std::string name() const override { return "Sequential"; }

    std::size_t layer_count() const { return layers_.size(); }

private:
    std::vector<LayerPtr> layers_;
};

}  // namespace gtopk::nn
