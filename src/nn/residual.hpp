// Residual block: y = body(x) + x. Requires body to preserve shape — the
// building block of the MiniResNet model (paper's ResNet-20/50 stand-in).
#pragma once

#include "nn/sequential.hpp"

namespace gtopk::nn {

class ResidualBlock final : public Layer {
public:
    explicit ResidualBlock(std::unique_ptr<Sequential> body) : body_(std::move(body)) {}

    Tensor forward(const Tensor& x, bool training) override;
    Tensor backward(const Tensor& dy) override;
    void collect_params(std::vector<ParamView>& out) override;
    std::string name() const override { return "ResidualBlock"; }

private:
    std::unique_ptr<Sequential> body_;
};

}  // namespace gtopk::nn
