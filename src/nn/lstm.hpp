// LstmLm: a stacked LSTM language model trained by truncated BPTT over
// fixed-length sequences — the stand-in for the paper's 2-layer LSTM-PTB.
//
// Architecture: embedding [V, E] -> num_layers x LSTM (layer 0 input E,
// deeper layers input H) -> Linear(H, V); loss is mean cross entropy over
// all N*T positions (predict token t+1 at step t). All gradients are
// computed by hand; gradient checks live in the tests.
#pragma once

#include <cstdint>

#include "nn/model.hpp"
#include "util/rng.hpp"

namespace gtopk::nn {

class LstmLm final : public TrainableModel {
public:
    LstmLm(std::int64_t vocab, std::int64_t embed_dim, std::int64_t hidden_dim,
           util::Xoshiro256& rng, int num_layers = 1);

    double train_step_gradients(const Batch& batch) override;
    double eval_loss(const Batch& batch) override;
    double eval_accuracy(const Batch& batch) override;

    std::int64_t vocab() const { return vocab_; }
    std::int64_t hidden_dim() const { return hidden_; }
    int num_layers() const { return static_cast<int>(layers_.size()); }

private:
    /// One LSTM layer's parameters and gradients (gate order i, f, g, o
    /// stacked along the first axis).
    struct LayerParams {
        std::int64_t input_dim = 0;
        std::vector<float> w_ih;  // [4H, input_dim]
        std::vector<float> w_hh;  // [4H, H]
        std::vector<float> b;     // [4H]
        std::vector<float> d_w_ih, d_w_hh, d_b;
    };

    /// Per-(layer, timestep) caches for BPTT.
    struct StepCache {
        std::vector<float> input;          // [N, input_dim] of this layer
        std::vector<float> i, f, g, o;     // post-activation gates, [N, H]
        std::vector<float> c, tanh_c, h;   // [N, H]
    };

    Tensor forward_sequence(const Batch& batch,
                            std::vector<std::vector<StepCache>>* caches);

    std::int64_t vocab_, embed_, hidden_;
    std::vector<float> emb_;      // [V, E]
    std::vector<float> d_emb_;
    std::vector<LayerParams> layers_;
    std::vector<float> w_out_;    // [V, H]
    std::vector<float> b_out_;    // [V]
    std::vector<float> d_w_out_, d_b_out_;
};

}  // namespace gtopk::nn
