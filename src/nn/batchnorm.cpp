#include "nn/batchnorm.hpp"

#include <cmath>
#include <stdexcept>

namespace gtopk::nn {

BatchNorm2d::BatchNorm2d(std::int64_t channels, float eps, float momentum)
    : channels_(channels),
      eps_(eps),
      momentum_(momentum),
      gamma_(static_cast<std::size_t>(channels), 1.0f),
      beta_(static_cast<std::size_t>(channels), 0.0f),
      dgamma_(gamma_.size(), 0.0f),
      dbeta_(beta_.size(), 0.0f),
      running_mean_(gamma_.size(), 0.0f),
      running_var_(gamma_.size(), 1.0f) {
    if (channels <= 0) throw std::invalid_argument("BatchNorm2d: channels must be > 0");
}

Tensor BatchNorm2d::forward(const Tensor& x, bool training) {
    if (x.rank() != 4 || x.dim(1) != channels_) {
        throw std::invalid_argument("BatchNorm2d: expected [N, C, H, W]");
    }
    const std::int64_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
    const std::int64_t count = n * h * w;
    Tensor y(x.shape());

    if (training) {
        cached_mean_.assign(static_cast<std::size_t>(channels_), 0.0f);
        cached_inv_std_.assign(static_cast<std::size_t>(channels_), 0.0f);
        cached_xhat_ = Tensor(x.shape());
        cached_count_ = count;
    }

    for (std::int64_t c = 0; c < channels_; ++c) {
        float mean = 0.0f, var = 0.0f;
        if (training) {
            double sum = 0.0, sum_sq = 0.0;
            for (std::int64_t b = 0; b < n; ++b) {
                for (std::int64_t i = 0; i < h; ++i) {
                    for (std::int64_t j = 0; j < w; ++j) {
                        const double v = x.at4(b, c, i, j);
                        sum += v;
                        sum_sq += v * v;
                    }
                }
            }
            mean = static_cast<float>(sum / static_cast<double>(count));
            var = static_cast<float>(sum_sq / static_cast<double>(count)) - mean * mean;
            var = std::max(var, 0.0f);
            running_mean_[static_cast<std::size_t>(c)] =
                (1.0f - momentum_) * running_mean_[static_cast<std::size_t>(c)] +
                momentum_ * mean;
            running_var_[static_cast<std::size_t>(c)] =
                (1.0f - momentum_) * running_var_[static_cast<std::size_t>(c)] +
                momentum_ * var;
        } else {
            mean = running_mean_[static_cast<std::size_t>(c)];
            var = running_var_[static_cast<std::size_t>(c)];
        }
        const float inv_std = 1.0f / std::sqrt(var + eps_);
        const float g = gamma_[static_cast<std::size_t>(c)];
        const float bshift = beta_[static_cast<std::size_t>(c)];
        if (training) {
            cached_mean_[static_cast<std::size_t>(c)] = mean;
            cached_inv_std_[static_cast<std::size_t>(c)] = inv_std;
        }
        for (std::int64_t b = 0; b < n; ++b) {
            for (std::int64_t i = 0; i < h; ++i) {
                for (std::int64_t j = 0; j < w; ++j) {
                    const float xhat = (x.at4(b, c, i, j) - mean) * inv_std;
                    if (training) cached_xhat_.at4(b, c, i, j) = xhat;
                    y.at4(b, c, i, j) = g * xhat + bshift;
                }
            }
        }
    }
    return y;
}

Tensor BatchNorm2d::backward(const Tensor& dy) {
    const Tensor& xhat = cached_xhat_;
    if (!dy.same_shape(xhat)) throw std::invalid_argument("BatchNorm2d: bad dy shape");
    const std::int64_t n = dy.dim(0), h = dy.dim(2), w = dy.dim(3);
    const auto count = static_cast<float>(cached_count_);
    Tensor dx(dy.shape());

    for (std::int64_t c = 0; c < channels_; ++c) {
        // Accumulate the two batch reductions the BN gradient needs.
        double sum_dy = 0.0, sum_dy_xhat = 0.0;
        for (std::int64_t b = 0; b < n; ++b) {
            for (std::int64_t i = 0; i < h; ++i) {
                for (std::int64_t j = 0; j < w; ++j) {
                    const double g = dy.at4(b, c, i, j);
                    sum_dy += g;
                    sum_dy_xhat += g * xhat.at4(b, c, i, j);
                }
            }
        }
        dbeta_[static_cast<std::size_t>(c)] += static_cast<float>(sum_dy);
        dgamma_[static_cast<std::size_t>(c)] += static_cast<float>(sum_dy_xhat);

        const float gamma = gamma_[static_cast<std::size_t>(c)];
        const float inv_std = cached_inv_std_[static_cast<std::size_t>(c)];
        const float mean_dy = static_cast<float>(sum_dy) / count;
        const float mean_dy_xhat = static_cast<float>(sum_dy_xhat) / count;
        // dx = gamma * inv_std * (dy - mean(dy) - xhat * mean(dy * xhat))
        for (std::int64_t b = 0; b < n; ++b) {
            for (std::int64_t i = 0; i < h; ++i) {
                for (std::int64_t j = 0; j < w; ++j) {
                    dx.at4(b, c, i, j) =
                        gamma * inv_std *
                        (dy.at4(b, c, i, j) - mean_dy -
                         xhat.at4(b, c, i, j) * mean_dy_xhat);
                }
            }
        }
    }
    return dx;
}

void BatchNorm2d::collect_params(std::vector<ParamView>& out) {
    out.push_back({&gamma_, &dgamma_, "bn.gamma"});
    out.push_back({&beta_, &dbeta_, "bn.beta"});
}

}  // namespace gtopk::nn
