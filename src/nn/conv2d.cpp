#include "nn/conv2d.hpp"

#include <stdexcept>

#include "nn/init.hpp"

namespace gtopk::nn {

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels, std::int64_t kernel,
               std::int64_t stride, std::int64_t padding, util::Xoshiro256& rng)
    : in_c_(in_channels),
      out_c_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      w_(static_cast<std::size_t>(out_channels * in_channels * kernel * kernel)),
      b_(static_cast<std::size_t>(out_channels), 0.0f),
      dw_(w_.size(), 0.0f),
      db_(b_.size(), 0.0f) {
    kaiming_normal(w_, static_cast<std::size_t>(in_channels * kernel * kernel), rng);
}

Tensor Conv2d::forward(const Tensor& x, bool training) {
    if (x.rank() != 4 || x.dim(1) != in_c_) {
        throw std::invalid_argument("Conv2d::forward: expected [N, C_in, H, W]");
    }
    if (training) cached_x_ = x;
    const std::int64_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
    const std::int64_t oh = out_dim(h), ow = out_dim(w);
    Tensor y({n, out_c_, oh, ow});
    for (std::int64_t b = 0; b < n; ++b) {
        for (std::int64_t oc = 0; oc < out_c_; ++oc) {
            for (std::int64_t i = 0; i < oh; ++i) {
                for (std::int64_t j = 0; j < ow; ++j) {
                    float acc = b_[static_cast<std::size_t>(oc)];
                    for (std::int64_t ic = 0; ic < in_c_; ++ic) {
                        for (std::int64_t ki = 0; ki < kernel_; ++ki) {
                            const std::int64_t hi = i * stride_ + ki - padding_;
                            if (hi < 0 || hi >= h) continue;
                            for (std::int64_t kj = 0; kj < kernel_; ++kj) {
                                const std::int64_t wj = j * stride_ + kj - padding_;
                                if (wj < 0 || wj >= w) continue;
                                const float wv =
                                    w_[static_cast<std::size_t>(((oc * in_c_ + ic) * kernel_ + ki) * kernel_ + kj)];
                                acc += wv * x.at4(b, ic, hi, wj);
                            }
                        }
                    }
                    y.at4(b, oc, i, j) = acc;
                }
            }
        }
    }
    return y;
}

Tensor Conv2d::backward(const Tensor& dy) {
    const Tensor& x = cached_x_;
    const std::int64_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
    const std::int64_t oh = out_dim(h), ow = out_dim(w);
    if (dy.rank() != 4 || dy.dim(1) != out_c_ || dy.dim(2) != oh || dy.dim(3) != ow) {
        throw std::invalid_argument("Conv2d::backward: shape mismatch");
    }
    Tensor dx({n, in_c_, h, w});
    for (std::int64_t b = 0; b < n; ++b) {
        for (std::int64_t oc = 0; oc < out_c_; ++oc) {
            for (std::int64_t i = 0; i < oh; ++i) {
                for (std::int64_t j = 0; j < ow; ++j) {
                    const float g = dy.at4(b, oc, i, j);
                    db_[static_cast<std::size_t>(oc)] += g;
                    for (std::int64_t ic = 0; ic < in_c_; ++ic) {
                        for (std::int64_t ki = 0; ki < kernel_; ++ki) {
                            const std::int64_t hi = i * stride_ + ki - padding_;
                            if (hi < 0 || hi >= h) continue;
                            for (std::int64_t kj = 0; kj < kernel_; ++kj) {
                                const std::int64_t wj = j * stride_ + kj - padding_;
                                if (wj < 0 || wj >= w) continue;
                                const std::size_t widx = static_cast<std::size_t>(
                                    ((oc * in_c_ + ic) * kernel_ + ki) * kernel_ + kj);
                                dw_[widx] += g * x.at4(b, ic, hi, wj);
                                dx.at4(b, ic, hi, wj) += g * w_[widx];
                            }
                        }
                    }
                }
            }
        }
    }
    return dx;
}

void Conv2d::collect_params(std::vector<ParamView>& out) {
    out.push_back({&w_, &dw_, "conv.w"});
    out.push_back({&b_, &db_, "conv.b"});
}

}  // namespace gtopk::nn
