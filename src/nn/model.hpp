// TrainableModel: the uniform surface the distributed trainers drive.
//
// A model exposes a flat parameter space (the m-element vector the paper's
// algorithms sparsify), a fused forward+backward step producing flat
// gradients, and evaluation helpers. Replica consistency is achieved by
// constructing every worker's model from the same seed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/layer.hpp"
#include "nn/tensor.hpp"

namespace gtopk::nn {

/// One mini-batch. For classifiers: x is [N, ...], targets has N labels.
/// For the LSTM LM: x is [N, T] token ids stored as floats (exact for
/// vocab < 2^24), targets has N*T next-token ids.
struct Batch {
    Tensor x;
    std::vector<std::int32_t> targets;
};

class TrainableModel {
public:
    virtual ~TrainableModel() = default;

    /// Zero grads, run forward and backward on `batch`; gradients for the
    /// whole model are left in the parameter views. Returns the mean loss.
    virtual double train_step_gradients(const Batch& batch) = 0;

    /// Mean loss in eval mode (no gradient side effects).
    virtual double eval_loss(const Batch& batch) = 0;

    /// Top-1 accuracy in eval mode (per-position accuracy for the LM).
    virtual double eval_accuracy(const Batch& batch) = 0;

    /// Borrowed views over every parameter tensor (stable for the model's
    /// lifetime).
    const std::vector<ParamView>& params() const { return params_; }

    std::size_t num_params() const { return param_count(params_); }

    std::vector<float> flat_params() const { return flatten_values(params_); }
    std::vector<float> flat_grads() const { return flatten_grads(params_); }
    void set_flat_params(std::span<const float> w) { set_values(params_, w); }
    void add_flat_delta(std::span<const float> d) { apply_delta(params_, d); }

protected:
    /// Derived classes populate this once construction is complete.
    std::vector<ParamView> params_;
};

}  // namespace gtopk::nn
