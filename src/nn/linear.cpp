#include "nn/linear.hpp"

#include <stdexcept>

#include "nn/init.hpp"

namespace gtopk::nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features,
               util::Xoshiro256& rng)
    : in_(in_features),
      out_(out_features),
      w_(static_cast<std::size_t>(in_features * out_features)),
      b_(static_cast<std::size_t>(out_features), 0.0f),
      dw_(w_.size(), 0.0f),
      db_(b_.size(), 0.0f) {
    kaiming_normal(w_, static_cast<std::size_t>(in_features), rng);
}

Tensor Linear::forward(const Tensor& x, bool training) {
    if (x.rank() != 2 || x.dim(1) != in_) {
        throw std::invalid_argument("Linear::forward: expected [N, in]");
    }
    if (training) cached_x_ = x;
    const std::int64_t n = x.dim(0);
    Tensor y({n, out_});
    for (std::int64_t i = 0; i < n; ++i) {
        const float* xi = x.raw() + i * in_;
        float* yi = y.raw() + i * out_;
        for (std::int64_t o = 0; o < out_; ++o) {
            const float* wo = w_.data() + o * in_;
            float acc = b_[static_cast<std::size_t>(o)];
            for (std::int64_t k = 0; k < in_; ++k) acc += xi[k] * wo[k];
            yi[o] = acc;
        }
    }
    return y;
}

Tensor Linear::backward(const Tensor& dy) {
    const std::int64_t n = dy.dim(0);
    if (dy.rank() != 2 || dy.dim(1) != out_ || cached_x_.dim(0) != n) {
        throw std::invalid_argument("Linear::backward: shape mismatch");
    }
    Tensor dx({n, in_});
    for (std::int64_t i = 0; i < n; ++i) {
        const float* xi = cached_x_.raw() + i * in_;
        const float* dyi = dy.raw() + i * out_;
        float* dxi = dx.raw() + i * in_;
        for (std::int64_t o = 0; o < out_; ++o) {
            const float g = dyi[o];
            db_[static_cast<std::size_t>(o)] += g;
            float* dwo = dw_.data() + o * in_;
            const float* wo = w_.data() + o * in_;
            for (std::int64_t k = 0; k < in_; ++k) {
                dwo[k] += g * xi[k];
                dxi[k] += g * wo[k];
            }
        }
    }
    return dx;
}

void Linear::collect_params(std::vector<ParamView>& out) {
    out.push_back({&w_, &dw_, "linear.w"});
    out.push_back({&b_, &db_, "linear.b"});
}

}  // namespace gtopk::nn
