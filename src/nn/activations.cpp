#include "nn/activations.hpp"

#include <cmath>

namespace gtopk::nn {

Tensor ReLU::forward(const Tensor& x, bool training) {
    if (training) cached_x_ = x;
    Tensor y = x;
    for (auto& v : y.data()) v = v > 0.0f ? v : 0.0f;
    return y;
}

Tensor ReLU::backward(const Tensor& dy) {
    Tensor dx = dy;
    auto xs = cached_x_.data();
    auto ds = dx.data();
    for (std::size_t i = 0; i < ds.size(); ++i) {
        if (xs[i] <= 0.0f) ds[i] = 0.0f;
    }
    return dx;
}

Tensor Tanh::forward(const Tensor& x, bool training) {
    Tensor y = x;
    for (auto& v : y.data()) v = std::tanh(v);
    if (training) cached_y_ = y;
    return y;
}

Tensor Tanh::backward(const Tensor& dy) {
    Tensor dx = dy;
    auto ys = cached_y_.data();
    auto ds = dx.data();
    for (std::size_t i = 0; i < ds.size(); ++i) ds[i] *= 1.0f - ys[i] * ys[i];
    return dx;
}

Tensor Sigmoid::forward(const Tensor& x, bool training) {
    Tensor y = x;
    for (auto& v : y.data()) v = 1.0f / (1.0f + std::exp(-v));
    if (training) cached_y_ = y;
    return y;
}

Tensor Sigmoid::backward(const Tensor& dy) {
    Tensor dx = dy;
    auto ys = cached_y_.data();
    auto ds = dx.data();
    for (std::size_t i = 0; i < ds.size(); ++i) ds[i] *= ys[i] * (1.0f - ys[i]);
    return dx;
}

Tensor Flatten::forward(const Tensor& x, bool training) {
    if (training) cached_shape_ = x.shape();
    const std::int64_t n = x.dim(0);
    return x.reshaped({n, x.numel() / n});
}

Tensor Flatten::backward(const Tensor& dy) { return dy.reshaped(cached_shape_); }

}  // namespace gtopk::nn
