// Model zoo: the scaled-down stand-ins for the paper's evaluated DNNs.
// Every factory is deterministic in `seed`, so P workers constructing the
// same config start from bit-identical replicas.
//
//   MiniVgg    FC-heavy small CNN — stands in for VGG-16/AlexNet, whose
//              large fully connected layers make them communication-bound.
//   MiniResNet residual CNN — stands in for ResNet-20/50, compute-bound.
//   MlpCifar   plain MLP on flattened images — fastest convergence benches.
//   LstmLm     recurrent LM — stands in for LSTM-PTB.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/model.hpp"

namespace gtopk::nn {

struct MlpConfig {
    std::int64_t input_dim = 3 * 16 * 16;
    std::vector<std::int64_t> hidden_dims = {128, 64};
    std::int64_t classes = 10;
};

struct MiniVggConfig {
    std::int64_t in_channels = 3;
    std::int64_t image_size = 16;  // square
    std::int64_t conv_channels = 8;
    std::int64_t fc_dim = 128;  // deliberately FC-heavy, like VGG
    std::int64_t classes = 10;
    /// Dropout probability on the FC layers (VGG/AlexNet style); 0 = off.
    float dropout = 0.0f;
};

struct MiniResNetConfig {
    std::int64_t in_channels = 3;
    std::int64_t image_size = 16;
    std::int64_t channels = 8;
    int blocks = 2;
    std::int64_t classes = 10;
    /// Insert BatchNorm2d after every convolution, as real ResNets do.
    bool batch_norm = false;
};

struct LstmConfig {
    std::int64_t vocab = 32;
    std::int64_t embed_dim = 24;
    std::int64_t hidden_dim = 48;
    int num_layers = 1;  // the paper's LSTM-PTB uses 2
};

std::unique_ptr<TrainableModel> make_mlp(const MlpConfig& config, std::uint64_t seed);
std::unique_ptr<TrainableModel> make_mini_vgg(const MiniVggConfig& config,
                                              std::uint64_t seed);
std::unique_ptr<TrainableModel> make_mini_resnet(const MiniResNetConfig& config,
                                                 std::uint64_t seed);
std::unique_ptr<TrainableModel> make_lstm_lm(const LstmConfig& config, std::uint64_t seed);

}  // namespace gtopk::nn
