// ClassifierModel: a Sequential network trained with softmax cross entropy.
#pragma once

#include <memory>

#include "nn/model.hpp"
#include "nn/sequential.hpp"

namespace gtopk::nn {

class ClassifierModel final : public TrainableModel {
public:
    explicit ClassifierModel(std::unique_ptr<Sequential> net);

    double train_step_gradients(const Batch& batch) override;
    double eval_loss(const Batch& batch) override;
    double eval_accuracy(const Batch& batch) override;

    Sequential& net() { return *net_; }

private:
    std::unique_ptr<Sequential> net_;
};

}  // namespace gtopk::nn
