#include "nn/lstm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/init.hpp"
#include "nn/loss.hpp"

namespace gtopk::nn {

namespace {
float sigmoidf(float x) { return 1.0f / (1.0f + std::exp(-x)); }
}  // namespace

LstmLm::LstmLm(std::int64_t vocab, std::int64_t embed_dim, std::int64_t hidden_dim,
               util::Xoshiro256& rng, int num_layers)
    : vocab_(vocab),
      embed_(embed_dim),
      hidden_(hidden_dim),
      emb_(static_cast<std::size_t>(vocab * embed_dim)),
      d_emb_(emb_.size(), 0.0f),
      w_out_(static_cast<std::size_t>(vocab * hidden_dim)),
      b_out_(static_cast<std::size_t>(vocab), 0.0f),
      d_w_out_(w_out_.size(), 0.0f),
      d_b_out_(b_out_.size(), 0.0f) {
    if (num_layers < 1) throw std::invalid_argument("LstmLm: need >= 1 layer");
    const float scale = 1.0f / std::sqrt(static_cast<float>(hidden_dim));
    uniform_init(emb_, 0.1f, rng);

    layers_.resize(static_cast<std::size_t>(num_layers));
    for (int l = 0; l < num_layers; ++l) {
        LayerParams& layer = layers_[static_cast<std::size_t>(l)];
        layer.input_dim = l == 0 ? embed_dim : hidden_dim;
        layer.w_ih.resize(static_cast<std::size_t>(4 * hidden_dim * layer.input_dim));
        layer.w_hh.resize(static_cast<std::size_t>(4 * hidden_dim * hidden_dim));
        layer.b.assign(static_cast<std::size_t>(4 * hidden_dim), 0.0f);
        uniform_init(layer.w_ih, scale, rng);
        uniform_init(layer.w_hh, scale, rng);
        // Forget-gate bias of 1: standard trick so gradients flow early on.
        for (std::int64_t j = 0; j < hidden_; ++j) {
            layer.b[static_cast<std::size_t>(hidden_ + j)] = 1.0f;
        }
        layer.d_w_ih.assign(layer.w_ih.size(), 0.0f);
        layer.d_w_hh.assign(layer.w_hh.size(), 0.0f);
        layer.d_b.assign(layer.b.size(), 0.0f);
    }
    uniform_init(w_out_, scale, rng);

    params_.push_back({&emb_, &d_emb_, "lstm.embedding"});
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        const std::string prefix = "lstm.l" + std::to_string(l);
        params_.push_back({&layers_[l].w_ih, &layers_[l].d_w_ih, prefix + ".w_ih"});
        params_.push_back({&layers_[l].w_hh, &layers_[l].d_w_hh, prefix + ".w_hh"});
        params_.push_back({&layers_[l].b, &layers_[l].d_b, prefix + ".b"});
    }
    params_.push_back({&w_out_, &d_w_out_, "lstm.w_out"});
    params_.push_back({&b_out_, &d_b_out_, "lstm.b_out"});
}

Tensor LstmLm::forward_sequence(const Batch& batch,
                                std::vector<std::vector<StepCache>>* caches) {
    if (batch.x.rank() != 2) throw std::invalid_argument("LstmLm: expected [N, T] ids");
    const std::int64_t n = batch.x.dim(0), t_len = batch.x.dim(1);
    const std::int64_t H = hidden_;
    const std::size_t num_layers = layers_.size();

    // Per-layer running state, and per-sample previous-h snapshot.
    std::vector<std::vector<float>> h(num_layers), c(num_layers);
    for (std::size_t l = 0; l < num_layers; ++l) {
        h[l].assign(static_cast<std::size_t>(n * H), 0.0f);
        c[l].assign(static_cast<std::size_t>(n * H), 0.0f);
    }
    std::vector<float> h_prev_snapshot(static_cast<std::size_t>(H));
    Tensor logits({n * t_len, vocab_});
    if (caches) {
        caches->assign(num_layers, {});
        for (auto& per_layer : *caches) {
            per_layer.assign(static_cast<std::size_t>(t_len), {});
        }
    }

    std::vector<float> layer_input;  // [N, input_dim] for the current layer
    for (std::int64_t t = 0; t < t_len; ++t) {
        // Layer 0 input: embedded tokens for the whole batch.
        layer_input.assign(static_cast<std::size_t>(n * embed_), 0.0f);
        for (std::int64_t b = 0; b < n; ++b) {
            const auto token = static_cast<std::int32_t>(batch.x.at2(b, t));
            if (token < 0 || token >= vocab_) {
                throw std::invalid_argument("LstmLm: token id out of range");
            }
            std::copy_n(emb_.data() + static_cast<std::size_t>(token) * embed_, embed_,
                        layer_input.data() + b * embed_);
        }

        for (std::size_t l = 0; l < num_layers; ++l) {
            LayerParams& layer = layers_[l];
            const std::int64_t in_dim = layer.input_dim;
            StepCache* cache =
                caches ? &(*caches)[l][static_cast<std::size_t>(t)] : nullptr;
            if (cache) {
                cache->input = layer_input;
                cache->i.resize(static_cast<std::size_t>(n * H));
                cache->f.resize(static_cast<std::size_t>(n * H));
                cache->g.resize(static_cast<std::size_t>(n * H));
                cache->o.resize(static_cast<std::size_t>(n * H));
                cache->c.resize(static_cast<std::size_t>(n * H));
                cache->tanh_c.resize(static_cast<std::size_t>(n * H));
                cache->h.resize(static_cast<std::size_t>(n * H));
            }
            for (std::int64_t b = 0; b < n; ++b) {
                const float* x_in = layer_input.data() + b * in_dim;
                float* h_cur = h[l].data() + b * H;
                float* c_cur = c[l].data() + b * H;
                // Snapshot h_{t-1}: h is updated in place per unit below,
                // and every unit's recurrent term must read the PREVIOUS
                // step's state.
                std::copy(h_cur, h_cur + H, h_prev_snapshot.begin());
                const float* h_prev = h_prev_snapshot.data();

                for (std::int64_t j = 0; j < H; ++j) {
                    float pre[4];
                    for (int gate = 0; gate < 4; ++gate) {
                        const std::int64_t row = gate * H + j;
                        const float* wi = layer.w_ih.data() + row * in_dim;
                        const float* wh = layer.w_hh.data() + row * H;
                        float acc = layer.b[static_cast<std::size_t>(row)];
                        for (std::int64_t e = 0; e < in_dim; ++e) acc += wi[e] * x_in[e];
                        for (std::int64_t kk = 0; kk < H; ++kk) acc += wh[kk] * h_prev[kk];
                        pre[gate] = acc;
                    }
                    const float ig = sigmoidf(pre[0]);
                    const float fg = sigmoidf(pre[1]);
                    const float gg = std::tanh(pre[2]);
                    const float og = sigmoidf(pre[3]);
                    const float c_new = fg * c_cur[j] + ig * gg;
                    const float tc = std::tanh(c_new);
                    const float h_new = og * tc;
                    if (cache) {
                        const std::size_t idx = static_cast<std::size_t>(b * H + j);
                        cache->i[idx] = ig;
                        cache->f[idx] = fg;
                        cache->g[idx] = gg;
                        cache->o[idx] = og;
                        cache->c[idx] = c_new;
                        cache->tanh_c[idx] = tc;
                        cache->h[idx] = h_new;
                    }
                    c_cur[j] = c_new;
                    h_cur[j] = h_new;
                }
            }
            // The next layer consumes this layer's fresh hidden states.
            layer_input.assign(h[l].begin(), h[l].end());
        }

        // Output projection from the TOP layer for every sample at (b, t).
        const std::vector<float>& top_h = h[num_layers - 1];
        for (std::int64_t b = 0; b < n; ++b) {
            const float* hb = top_h.data() + b * H;
            float* out_row = logits.raw() + (b * t_len + t) * vocab_;
            for (std::int64_t v = 0; v < vocab_; ++v) {
                const float* wo = w_out_.data() + v * H;
                float acc = b_out_[static_cast<std::size_t>(v)];
                for (std::int64_t j = 0; j < H; ++j) acc += wo[j] * hb[j];
                out_row[v] = acc;
            }
        }
    }
    return logits;
}

double LstmLm::train_step_gradients(const Batch& batch) {
    zero_grads(params_);
    const std::int64_t n = batch.x.dim(0), t_len = batch.x.dim(1);
    const std::int64_t H = hidden_;
    const std::size_t num_layers = layers_.size();
    if (static_cast<std::int64_t>(batch.targets.size()) != n * t_len) {
        throw std::invalid_argument("LstmLm: need one target per position");
    }
    std::vector<std::vector<StepCache>> caches;
    Tensor logits = forward_sequence(batch, &caches);
    LossResult lr = softmax_cross_entropy(logits, batch.targets);

    // --- BPTT through the stack: dh/dc carried per layer across time;
    // within a timestep, layer l's input gradient feeds layer l-1's dh.
    std::vector<std::vector<float>> dh(num_layers), dc(num_layers);
    for (std::size_t l = 0; l < num_layers; ++l) {
        dh[l].assign(static_cast<std::size_t>(n * H), 0.0f);
        dc[l].assign(static_cast<std::size_t>(n * H), 0.0f);
    }

    for (std::int64_t t = t_len - 1; t >= 0; --t) {
        // Output head: gradient w.r.t. the top layer's h at this step.
        const StepCache& top = caches[num_layers - 1][static_cast<std::size_t>(t)];
        for (std::int64_t b = 0; b < n; ++b) {
            const float* dlog = lr.dlogits.raw() + (b * t_len + t) * vocab_;
            const float* h_cur = top.h.data() + b * H;
            float* dh_b = dh[num_layers - 1].data() + b * H;
            for (std::int64_t v = 0; v < vocab_; ++v) {
                const float g = dlog[v];
                if (g == 0.0f) continue;
                d_b_out_[static_cast<std::size_t>(v)] += g;
                float* dwo = d_w_out_.data() + v * H;
                const float* wo = w_out_.data() + v * H;
                for (std::int64_t j = 0; j < H; ++j) {
                    dwo[j] += g * h_cur[j];
                    dh_b[j] += g * wo[j];
                }
            }
        }

        // Walk the stack downward; dx of layer l lands in dh of layer l-1
        // (same timestep) or in the embedding for layer 0.
        for (std::size_t l = num_layers; l-- > 0;) {
            LayerParams& layer = layers_[l];
            const std::int64_t in_dim = layer.input_dim;
            const StepCache& cur = caches[l][static_cast<std::size_t>(t)];
            const StepCache* prev =
                t > 0 ? &caches[l][static_cast<std::size_t>(t - 1)] : nullptr;
            for (std::int64_t b = 0; b < n; ++b) {
                float* dh_b = dh[l].data() + b * H;
                float* dc_b = dc[l].data() + b * H;
                const float* x_in = cur.input.data() + b * in_dim;
                const float* h_prev = prev ? prev->h.data() + b * H : nullptr;
                const float* c_prev = prev ? prev->c.data() + b * H : nullptr;
                std::vector<float> dx(static_cast<std::size_t>(in_dim), 0.0f);
                std::vector<float> dh_prev(static_cast<std::size_t>(H), 0.0f);

                for (std::int64_t j = 0; j < H; ++j) {
                    const std::size_t idx = static_cast<std::size_t>(b * H + j);
                    const float ig = cur.i[idx], fg = cur.f[idx], gg = cur.g[idx],
                                og = cur.o[idx];
                    const float tc = cur.tanh_c[idx];
                    const float dh_j = dh_b[j];
                    const float do_pre = dh_j * tc * og * (1.0f - og);
                    float dc_j = dh_j * og * (1.0f - tc * tc) + dc_b[j];
                    const float cp = c_prev ? c_prev[j] : 0.0f;
                    const float df_pre = dc_j * cp * fg * (1.0f - fg);
                    const float di_pre = dc_j * gg * ig * (1.0f - ig);
                    const float dg_pre = dc_j * ig * (1.0f - gg * gg);
                    dc_b[j] = dc_j * fg;

                    const float dpre[4] = {di_pre, df_pre, dg_pre, do_pre};
                    for (int gate = 0; gate < 4; ++gate) {
                        const float dp = dpre[gate];
                        if (dp == 0.0f) continue;
                        const std::int64_t row = gate * H + j;
                        layer.d_b[static_cast<std::size_t>(row)] += dp;
                        float* dwi = layer.d_w_ih.data() + row * in_dim;
                        const float* wi = layer.w_ih.data() + row * in_dim;
                        for (std::int64_t e = 0; e < in_dim; ++e) {
                            dwi[e] += dp * x_in[e];
                            dx[static_cast<std::size_t>(e)] += dp * wi[e];
                        }
                        float* dwh = layer.d_w_hh.data() + row * H;
                        const float* wh = layer.w_hh.data() + row * H;
                        for (std::int64_t kk = 0; kk < H; ++kk) {
                            if (h_prev) dwh[kk] += dp * h_prev[kk];
                            dh_prev[static_cast<std::size_t>(kk)] += dp * wh[kk];
                        }
                    }
                }
                // Route the input gradient downward.
                if (l == 0) {
                    const auto token = static_cast<std::int32_t>(batch.x.at2(b, t));
                    float* demb_row =
                        d_emb_.data() + static_cast<std::size_t>(token) * embed_;
                    for (std::int64_t e = 0; e < embed_; ++e) {
                        demb_row[e] += dx[static_cast<std::size_t>(e)];
                    }
                } else {
                    float* dh_below = dh[l - 1].data() + b * H;
                    for (std::int64_t j = 0; j < H; ++j) {
                        dh_below[j] += dx[static_cast<std::size_t>(j)];
                    }
                }
                for (std::int64_t j = 0; j < H; ++j) {
                    dh_b[j] = dh_prev[static_cast<std::size_t>(j)];
                }
            }
        }
    }
    return lr.loss;
}

double LstmLm::eval_loss(const Batch& batch) {
    Tensor logits = forward_sequence(batch, nullptr);
    return softmax_cross_entropy(logits, batch.targets).loss;
}

double LstmLm::eval_accuracy(const Batch& batch) {
    Tensor logits = forward_sequence(batch, nullptr);
    return accuracy(logits, batch.targets);
}

}  // namespace gtopk::nn
