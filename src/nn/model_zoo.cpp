#include "nn/model_zoo.hpp"

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/classifier_model.hpp"
#include "nn/conv2d.hpp"
#include "nn/dropout.hpp"
#include "nn/linear.hpp"
#include "nn/lstm.hpp"
#include "nn/pool2d.hpp"
#include "nn/residual.hpp"
#include "util/rng.hpp"

namespace gtopk::nn {

std::unique_ptr<TrainableModel> make_mlp(const MlpConfig& config, std::uint64_t seed) {
    util::Xoshiro256 rng(seed);
    auto net = std::make_unique<Sequential>();
    std::int64_t in = config.input_dim;
    for (std::int64_t h : config.hidden_dims) {
        net->emplace<Linear>(in, h, rng);
        net->emplace<ReLU>();
        in = h;
    }
    net->emplace<Linear>(in, config.classes, rng);
    return std::make_unique<ClassifierModel>(std::move(net));
}

std::unique_ptr<TrainableModel> make_mini_vgg(const MiniVggConfig& config,
                                              std::uint64_t seed) {
    util::Xoshiro256 rng(seed);
    auto net = std::make_unique<Sequential>();
    const std::int64_t c = config.conv_channels;
    net->emplace<Conv2d>(config.in_channels, c, 3, 1, 1, rng);
    net->emplace<ReLU>();
    net->emplace<MaxPool2d>(2);
    net->emplace<Conv2d>(c, 2 * c, 3, 1, 1, rng);
    net->emplace<ReLU>();
    net->emplace<MaxPool2d>(2);
    net->emplace<Flatten>();
    const std::int64_t spatial = config.image_size / 4;
    net->emplace<Linear>(2 * c * spatial * spatial, config.fc_dim, rng);
    net->emplace<ReLU>();
    if (config.dropout > 0.0f) net->emplace<Dropout>(config.dropout, seed ^ 0xD0u);
    net->emplace<Linear>(config.fc_dim, config.fc_dim / 2, rng);
    net->emplace<ReLU>();
    if (config.dropout > 0.0f) net->emplace<Dropout>(config.dropout, seed ^ 0xD1u);
    net->emplace<Linear>(config.fc_dim / 2, config.classes, rng);
    return std::make_unique<ClassifierModel>(std::move(net));
}

std::unique_ptr<TrainableModel> make_mini_resnet(const MiniResNetConfig& config,
                                                 std::uint64_t seed) {
    util::Xoshiro256 rng(seed);
    auto net = std::make_unique<Sequential>();
    const std::int64_t c = config.channels;
    net->emplace<Conv2d>(config.in_channels, c, 3, 1, 1, rng);
    if (config.batch_norm) net->emplace<BatchNorm2d>(c);
    net->emplace<ReLU>();
    for (int b = 0; b < config.blocks; ++b) {
        auto body = std::make_unique<Sequential>();
        body->emplace<Conv2d>(c, c, 3, 1, 1, rng);
        if (config.batch_norm) body->emplace<BatchNorm2d>(c);
        body->emplace<ReLU>();
        body->emplace<Conv2d>(c, c, 3, 1, 1, rng);
        if (config.batch_norm) body->emplace<BatchNorm2d>(c);
        net->emplace<ResidualBlock>(std::move(body));
        net->emplace<ReLU>();
    }
    net->emplace<MaxPool2d>(2);
    net->emplace<Flatten>();
    const std::int64_t spatial = config.image_size / 2;
    net->emplace<Linear>(c * spatial * spatial, config.classes, rng);
    return std::make_unique<ClassifierModel>(std::move(net));
}

std::unique_ptr<TrainableModel> make_lstm_lm(const LstmConfig& config,
                                             std::uint64_t seed) {
    util::Xoshiro256 rng(seed);
    return std::make_unique<LstmLm>(config.vocab, config.embed_dim, config.hidden_dim,
                                    rng, config.num_layers);
}

}  // namespace gtopk::nn
