#include "nn/tensor.hpp"

#include <algorithm>
#include <stdexcept>

namespace gtopk::nn {

namespace {
std::int64_t shape_numel(const std::vector<std::int64_t>& shape) {
    std::int64_t n = 1;
    for (std::int64_t d : shape) {
        if (d < 0) throw std::invalid_argument("Tensor: negative dimension");
        n *= d;
    }
    return n;
}
}  // namespace

Tensor::Tensor(std::vector<std::int64_t> shape)
    : shape_(std::move(shape)), numel_(shape_numel(shape_)) {
    data_.assign(static_cast<std::size_t>(numel_), 0.0f);
}

Tensor::Tensor(std::vector<std::int64_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), numel_(shape_numel(shape_)), data_(std::move(data)) {
    if (static_cast<std::int64_t>(data_.size()) != numel_) {
        throw std::invalid_argument("Tensor: data size does not match shape");
    }
}

Tensor Tensor::reshaped(std::vector<std::int64_t> new_shape) const {
    if (shape_numel(new_shape) != numel_) {
        throw std::invalid_argument("reshaped: numel mismatch");
    }
    return Tensor(std::move(new_shape), data_);
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

}  // namespace gtopk::nn
