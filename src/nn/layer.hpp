// Layer: the unit of the manual-backprop framework.
//
// Contract: forward(x, training) caches whatever backward needs;
// backward(dy) ACCUMULATES into the layer's parameter gradients and returns
// dx. Callers zero gradients between iterations via zero_grads().
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace gtopk::nn {

/// Borrowed view of one parameter tensor and its gradient, both flattened.
struct ParamView {
    std::vector<float>* value = nullptr;
    std::vector<float>* grad = nullptr;
    std::string name;
};

class Layer {
public:
    virtual ~Layer() = default;

    virtual Tensor forward(const Tensor& x, bool training) = 0;
    virtual Tensor backward(const Tensor& dy) = 0;

    /// Append borrowed views of this layer's parameters (default: none).
    virtual void collect_params(std::vector<ParamView>& out) { (void)out; }

    virtual std::string name() const = 0;
};

using LayerPtr = std::unique_ptr<Layer>;

/// Total element count across a parameter list.
std::size_t param_count(const std::vector<ParamView>& params);

/// Zero every gradient buffer in the list.
void zero_grads(const std::vector<ParamView>& params);

/// Copy all parameters into / out of one flat vector (rank order = list
/// order). This flat space is the "m-element gradient" the paper
/// sparsifies.
std::vector<float> flatten_values(const std::vector<ParamView>& params);
std::vector<float> flatten_grads(const std::vector<ParamView>& params);
void set_values(const std::vector<ParamView>& params, std::span<const float> flat);
/// params += delta (flat).
void apply_delta(const std::vector<ParamView>& params, std::span<const float> delta);

}  // namespace gtopk::nn
