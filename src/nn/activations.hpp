// Elementwise activations. Each caches what its derivative needs.
#pragma once

#include "nn/layer.hpp"

namespace gtopk::nn {

class ReLU final : public Layer {
public:
    Tensor forward(const Tensor& x, bool training) override;
    Tensor backward(const Tensor& dy) override;
    std::string name() const override { return "ReLU"; }

private:
    Tensor cached_x_;
};

class Tanh final : public Layer {
public:
    Tensor forward(const Tensor& x, bool training) override;
    Tensor backward(const Tensor& dy) override;
    std::string name() const override { return "Tanh"; }

private:
    Tensor cached_y_;
};

class Sigmoid final : public Layer {
public:
    Tensor forward(const Tensor& x, bool training) override;
    Tensor backward(const Tensor& dy) override;
    std::string name() const override { return "Sigmoid"; }

private:
    Tensor cached_y_;
};

class Flatten final : public Layer {
public:
    Tensor forward(const Tensor& x, bool training) override;
    Tensor backward(const Tensor& dy) override;
    std::string name() const override { return "Flatten"; }

private:
    std::vector<std::int64_t> cached_shape_;
};

}  // namespace gtopk::nn
