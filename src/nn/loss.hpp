// Loss functions. Each returns the scalar loss (mean over the batch) and
// the gradient w.r.t. the network output, already divided by batch size so
// trainers can feed it straight into backward().
#pragma once

#include <cstdint>
#include <span>

#include "nn/tensor.hpp"

namespace gtopk::nn {

struct LossResult {
    double loss = 0.0;
    Tensor dlogits;
};

/// Softmax + cross entropy over logits [N, C] with integer labels [N].
/// Numerically stabilized (max-subtraction).
LossResult softmax_cross_entropy(const Tensor& logits, std::span<const std::int32_t> labels);

/// Mean squared error against targets of identical shape.
LossResult mse_loss(const Tensor& output, const Tensor& target);

/// argmax-based top-1 accuracy for logits [N, C].
double accuracy(const Tensor& logits, std::span<const std::int32_t> labels);

}  // namespace gtopk::nn
