// 2-D convolution, NCHW layout, square kernel, configurable stride and
// zero padding. Direct (naive) loops — the models here are small enough
// that clarity beats an im2col.
#pragma once

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace gtopk::nn {

class Conv2d final : public Layer {
public:
    Conv2d(std::int64_t in_channels, std::int64_t out_channels, std::int64_t kernel,
           std::int64_t stride, std::int64_t padding, util::Xoshiro256& rng);

    Tensor forward(const Tensor& x, bool training) override;
    Tensor backward(const Tensor& dy) override;
    void collect_params(std::vector<ParamView>& out) override;
    std::string name() const override { return "Conv2d"; }

    std::int64_t out_dim(std::int64_t in_dim) const {
        return (in_dim + 2 * padding_ - kernel_) / stride_ + 1;
    }

private:
    std::int64_t in_c_, out_c_, kernel_, stride_, padding_;
    std::vector<float> w_;   // [out_c, in_c, k, k]
    std::vector<float> b_;   // [out_c]
    std::vector<float> dw_;
    std::vector<float> db_;
    Tensor cached_x_;
};

}  // namespace gtopk::nn
