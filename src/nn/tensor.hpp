// Tensor: a minimal dense float32 n-d array (row-major), sized for the
// scaled-down models this repo trains. No views, no broadcasting — layers
// index explicitly, which keeps the backprop code auditable.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

namespace gtopk::nn {

class Tensor {
public:
    Tensor() = default;
    explicit Tensor(std::vector<std::int64_t> shape);
    Tensor(std::vector<std::int64_t> shape, std::vector<float> data);

    static Tensor zeros(std::vector<std::int64_t> shape) { return Tensor(std::move(shape)); }

    const std::vector<std::int64_t>& shape() const { return shape_; }
    std::int64_t dim(std::size_t axis) const { return shape_[axis]; }
    std::size_t rank() const { return shape_.size(); }
    std::int64_t numel() const { return numel_; }

    std::span<float> data() { return data_; }
    std::span<const float> data() const { return data_; }

    float* raw() { return data_.data(); }
    const float* raw() const { return data_.data(); }

    float& operator[](std::size_t i) { return data_[i]; }
    float operator[](std::size_t i) const { return data_[i]; }

    // Convenience indexed access for the ranks the layers use.
    float& at2(std::int64_t i, std::int64_t j) {
        return data_[static_cast<std::size_t>(i * shape_[1] + j)];
    }
    float at2(std::int64_t i, std::int64_t j) const {
        return data_[static_cast<std::size_t>(i * shape_[1] + j)];
    }
    float& at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) {
        return data_[static_cast<std::size_t>(((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w)];
    }
    float at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) const {
        return data_[static_cast<std::size_t>(((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w)];
    }

    /// Reinterpret with a new shape of equal numel.
    Tensor reshaped(std::vector<std::int64_t> new_shape) const;

    void fill(float v);

    bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

private:
    std::vector<std::int64_t> shape_;
    std::int64_t numel_ = 0;
    std::vector<float> data_;
};

}  // namespace gtopk::nn
