#include "nn/dropout.hpp"

#include <stdexcept>

namespace gtopk::nn {

Dropout::Dropout(float drop_probability, std::uint64_t seed)
    : p_(drop_probability), rng_(seed) {
    if (p_ < 0.0f || p_ >= 1.0f) {
        throw std::invalid_argument("Dropout: p must be in [0, 1)");
    }
}

Tensor Dropout::forward(const Tensor& x, bool training) {
    if (!training || p_ == 0.0f) {
        mask_.clear();
        return x;
    }
    const float keep_scale = 1.0f / (1.0f - p_);
    mask_.resize(static_cast<std::size_t>(x.numel()));
    Tensor y = x;
    auto ys = y.data();
    for (std::size_t i = 0; i < mask_.size(); ++i) {
        mask_[i] = rng_.next_double() < p_ ? 0.0f : keep_scale;
        ys[i] *= mask_[i];
    }
    return y;
}

Tensor Dropout::backward(const Tensor& dy) {
    if (mask_.empty()) return dy;
    Tensor dx = dy;
    auto ds = dx.data();
    for (std::size_t i = 0; i < mask_.size(); ++i) ds[i] *= mask_[i];
    return dx;
}

}  // namespace gtopk::nn
