#include "nn/residual.hpp"

#include <stdexcept>

namespace gtopk::nn {

Tensor ResidualBlock::forward(const Tensor& x, bool training) {
    Tensor y = body_->forward(x, training);
    if (!y.same_shape(x)) {
        throw std::invalid_argument("ResidualBlock: body must preserve shape");
    }
    auto ys = y.data();
    auto xs = x.data();
    for (std::size_t i = 0; i < ys.size(); ++i) ys[i] += xs[i];
    return y;
}

Tensor ResidualBlock::backward(const Tensor& dy) {
    Tensor dx = body_->backward(dy);
    auto ds = dx.data();
    auto gs = dy.data();
    for (std::size_t i = 0; i < ds.size(); ++i) ds[i] += gs[i];
    return dx;
}

void ResidualBlock::collect_params(std::vector<ParamView>& out) {
    body_->collect_params(out);
}

}  // namespace gtopk::nn
