// Inverted dropout: active only in training mode; eval is identity.
// The mask stream is owned by the layer and seeded explicitly so replicas
// can be made identical (or intentionally decorrelated) by the caller.
#pragma once

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace gtopk::nn {

class Dropout final : public Layer {
public:
    Dropout(float drop_probability, std::uint64_t seed);

    Tensor forward(const Tensor& x, bool training) override;
    Tensor backward(const Tensor& dy) override;
    std::string name() const override { return "Dropout"; }

private:
    float p_;
    util::Xoshiro256 rng_;
    std::vector<float> mask_;  // 0 or 1/(1-p) per element
};

}  // namespace gtopk::nn
