#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gtopk::nn {

LossResult softmax_cross_entropy(const Tensor& logits,
                                 std::span<const std::int32_t> labels) {
    if (logits.rank() != 2) throw std::invalid_argument("expected [N, C] logits");
    const std::int64_t n = logits.dim(0), c = logits.dim(1);
    if (static_cast<std::int64_t>(labels.size()) != n) {
        throw std::invalid_argument("labels size mismatch");
    }
    LossResult result;
    result.dlogits = Tensor({n, c});
    double total = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
        const float* row = logits.raw() + i * c;
        float* drow = result.dlogits.raw() + i * c;
        const float mx = *std::max_element(row, row + c);
        double denom = 0.0;
        for (std::int64_t j = 0; j < c; ++j) denom += std::exp(static_cast<double>(row[j] - mx));
        const std::int32_t label = labels[static_cast<std::size_t>(i)];
        if (label < 0 || label >= c) throw std::invalid_argument("label out of range");
        for (std::int64_t j = 0; j < c; ++j) {
            const double p = std::exp(static_cast<double>(row[j] - mx)) / denom;
            drow[j] = static_cast<float>((p - (j == label ? 1.0 : 0.0)) / static_cast<double>(n));
        }
        const double log_p =
            static_cast<double>(row[label] - mx) - std::log(denom);
        total -= log_p;
    }
    result.loss = total / static_cast<double>(n);
    return result;
}

LossResult mse_loss(const Tensor& output, const Tensor& target) {
    if (!output.same_shape(target)) throw std::invalid_argument("mse: shape mismatch");
    LossResult result;
    result.dlogits = Tensor(output.shape());
    const auto n = static_cast<double>(output.numel());
    double total = 0.0;
    for (std::int64_t i = 0; i < output.numel(); ++i) {
        const double d = static_cast<double>(output[static_cast<std::size_t>(i)]) -
                         static_cast<double>(target[static_cast<std::size_t>(i)]);
        total += d * d;
        result.dlogits[static_cast<std::size_t>(i)] = static_cast<float>(2.0 * d / n);
    }
    result.loss = total / n;
    return result;
}

double accuracy(const Tensor& logits, std::span<const std::int32_t> labels) {
    const std::int64_t n = logits.dim(0), c = logits.dim(1);
    std::int64_t correct = 0;
    for (std::int64_t i = 0; i < n; ++i) {
        const float* row = logits.raw() + i * c;
        const std::int64_t pred = std::max_element(row, row + c) - row;
        if (pred == labels[static_cast<std::size_t>(i)]) ++correct;
    }
    return n == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(n);
}

}  // namespace gtopk::nn
