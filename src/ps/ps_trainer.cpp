#include "ps/ps_trainer.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "obs/telemetry.hpp"
#include "ps/ps_schedule.hpp"
#include "sparse/topk_merge.hpp"
#include "sparse/topk_select.hpp"
#include "sparse/wire.hpp"

namespace gtopk::ps {

namespace {

using collectives::CommOp;
using comm::Communicator;
using sparse::SparseGradient;

double now_host_s() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/// Per-epoch schedule shared by server and workers (must agree).
struct EpochPlan {
    double density;
    float lr;
    std::size_t k;
};

EpochPlan plan_epoch(const PsTrainConfig& config, int epoch, std::size_t m) {
    const bool warm = epoch < static_cast<int>(config.warmup_densities.size());
    EpochPlan plan;
    plan.density = warm ? config.warmup_densities[static_cast<std::size_t>(epoch)]
                        : config.density;
    plan.lr = warm ? config.lr * config.warmup_lr_scale : config.lr;
    plan.k = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(plan.density * static_cast<double>(m))));
    return plan;
}

void scatter_mean(const sparse::SparseGradientView& g, int workers,
                  std::vector<float>& out) {
    std::fill(out.begin(), out.end(), 0.0f);
    const float inv = 1.0f / static_cast<float>(workers);
    for (std::size_t i = 0; i < g.nnz(); ++i) {
        out[static_cast<std::size_t>(g.indices[i])] = g.values[i] * inv;
    }
}

}  // namespace

train::TrainResult train_parameter_server(int workers, comm::NetworkModel net,
                                          const PsTrainConfig& config,
                                          const train::ModelFactory& factory,
                                          const train::TrainBatchProvider& batches,
                                          const train::EvalBatchProvider& eval) {
    if (workers < 1) throw std::invalid_argument("need at least one worker");
    const int world = workers + 1;

    std::vector<train::EpochMetrics> epochs_out;
    train::TrainResult result;
    double total_compute = 0, total_compress = 0, total_comm = 0;
    std::int64_t worker0_iters = 0;

    auto node = [&](Communicator& comm) {
        const bool is_server = comm.rank() == 0;
        const int wid = comm.rank() - 1;  // worker id for providers

        std::unique_ptr<nn::TrainableModel> model = factory(config.model_seed);
        const std::size_t m = model->num_params();
        std::vector<float> residual(m, 0.0f);
        std::vector<float> velocity(m, 0.0f);
        std::vector<float> update(m, 0.0f);
        // Reused hot-path scratch (see DESIGN.md §9): selection workspace on
        // workers, merge scratch + wire buffer on the server.
        sparse::TopkWorkspace select_ws;
        sparse::MergeScratch merge_scratch;
        std::vector<std::byte> wire;

        // The iteration exchange executes this op program (peers and tags
        // come exclusively from the generator, which src/analysis verifies).
        // Dense payloads are m floats both ways; sparse payloads are
        // data-dependent, so the schedule marks them variable.
        const bool dense_agg = config.aggregation == PsAggregation::Dense;
        const std::int64_t dense_bytes =
            static_cast<std::int64_t>(m) * static_cast<std::int64_t>(sizeof(float));
        const collectives::Schedule iter_sched = ps_iteration_schedule(
            workers, dense_agg ? dense_bytes : collectives::kVariableBytes,
            dense_agg ? dense_bytes : collectives::kVariableBytes);
        const auto& my_ops = iter_sched.rank_ops(comm.rank());

        std::int64_t step = 0;
        for (int epoch = 0; epoch < config.epochs; ++epoch) {
            const EpochPlan plan = plan_epoch(config, epoch, m);
            double epoch_loss = 0.0;

            // Attribution join key for the star exchange: dense payloads are
            // m floats each way, sparse ones a fixed-k wire block.
            obs::CollectiveSpec spec;
            spec.proto = "ps.iteration";
            spec.m = static_cast<std::int64_t>(m);
            if (dense_agg) {
                spec.elems = static_cast<std::int64_t>(m);
                spec.elem_bytes = 4;
            } else {
                spec.elems =
                    static_cast<std::int64_t>(sparse::wire_size_bytes(plan.k));
                spec.elem_bytes = 1;
                spec.k = static_cast<std::int64_t>(plan.k);
            }
            auto exchange_telemetry = [&](double compute_s, double select_s,
                                          double comm_s, double update_s,
                                          std::int64_t nnz,
                                          const comm::CommStats& pre) {
                if (!config.telemetry) return;
                obs::RankIterStats st;
                st.step = step;
                st.compute_host_s = compute_s;
                st.compress_host_s = select_s;
                st.comm_virtual_s = comm_s;
                st.update_host_s = update_s;
                st.nnz = nnz;
                const comm::CommStats post = comm.stats();
                st.wire_bytes_sent =
                    static_cast<std::int64_t>(post.bytes_sent - pre.bytes_sent);
                st.wire_bytes_received = static_cast<std::int64_t>(
                    post.bytes_received - pre.bytes_received);
                st.messages_sent = static_cast<std::int64_t>(
                    post.messages_sent - pre.messages_sent);
                st.messages_received = static_cast<std::int64_t>(
                    post.messages_received - pre.messages_received);
                st.mailbox_depth = static_cast<std::int64_t>(comm.mailbox_depth());
                config.telemetry->exchange(comm, st, &spec);
            };

            for (int it = 0; it < config.iters_per_epoch; ++it, ++step) {
                if (is_server) {
                    const comm::CommStats server_pre = comm.stats();
                    const double sv0 = comm.clock().now_s();
                    // ---- server: receive, aggregate, answer ----
                    // Phase 0 ops are the per-worker pushes; the first
                    // phase-1 op marks aggregation complete.
                    if (config.aggregation == PsAggregation::Dense) {
                        std::vector<float> sum(m, 0.0f);
                        std::vector<float> grad;
                        for (const CommOp& op : my_ops) {
                            if (op.kind == CommOp::Kind::Recv) {
                                comm.recv_vec_into<float>(op.peer, op.tag_offset, grad);
                                for (std::size_t i = 0; i < m; ++i) sum[i] += grad[i];
                            } else {
                                comm.send_vec<float>(op.peer, op.tag_offset, sum);
                            }
                        }
                    } else {
                        SparseGradient sum;
                        sum.dense_size = static_cast<std::int64_t>(m);
                        bool aggregated = false;
                        for (const CommOp& op : my_ops) {
                            if (op.kind == CommOp::Kind::Recv) {
                                // Validate-once view straight off the pooled
                                // wire bytes; k = m makes the merge a pure
                                // sparse sum (merged nnz can never exceed m).
                                const comm::PooledBuffer raw =
                                    comm.recv_buffer(op.peer, op.tag_offset);
                                const sparse::SparseGradientView v =
                                    sparse::deserialize_view(raw.bytes());
                                sparse::topk_merge_into(sum, v.dense_size, v.indices,
                                                        v.values, m, merge_scratch);
                            } else {
                                if (!aggregated) {
                                    const SparseGradient global =
                                        sparse::sparse_topk(sum, plan.k);
                                    sparse::serialize_into(global, wire);
                                    aggregated = true;
                                }
                                comm.send(op.peer, op.tag_offset, wire);
                            }
                        }
                    }
                    exchange_telemetry(0.0, 0.0, comm.clock().now_s() - sv0,
                                       0.0, -1, server_pre);
                    continue;
                }

                // ---- worker ----
                const double t0 = now_host_s();
                nn::Batch batch = batches(step, wid);
                const double loss = model->train_step_gradients(batch);
                epoch_loss += loss;
                std::vector<float> accumulated = model->flat_grads();
                if (config.aggregation == PsAggregation::Gtopk) {
                    for (std::size_t i = 0; i < m; ++i) accumulated[i] += residual[i];
                }
                const double t1 = now_host_s();

                SparseGradient local;
                if (config.aggregation == PsAggregation::Gtopk) {
                    sparse::topk_select_into(accumulated, plan.k, select_ws, local);
                    residual = accumulated;
                    sparse::zero_selected(residual, local);
                }
                const double t2 = now_host_s();

                const comm::CommStats worker_pre = comm.stats();
                const double v0 = comm.clock().now_s();
                for (const CommOp& op : my_ops) {
                    if (config.aggregation == PsAggregation::Dense) {
                        if (op.kind == CommOp::Kind::Send) {
                            comm.send_vec<float>(op.peer, op.tag_offset, accumulated);
                        } else {
                            const auto sum = comm.recv_vec<float>(op.peer, op.tag_offset);
                            const float inv = 1.0f / static_cast<float>(workers);
                            for (std::size_t i = 0; i < m; ++i) update[i] = sum[i] * inv;
                        }
                    } else if (op.kind == CommOp::Kind::Send) {
                        // Push via a pooled buffer (no owning temporary).
                        std::vector<std::byte> push =
                            comm.buffer_pool().acquire(sparse::wire_size_bytes(local.nnz()));
                        sparse::serialize_into(local, push);
                        comm.send_buffer(op.peer, op.tag_offset, std::move(push));
                    } else {
                        // Pull as a zero-copy view over the wire bytes.
                        const comm::PooledBuffer raw =
                            comm.recv_buffer(op.peer, op.tag_offset);
                        const sparse::SparseGradientView global =
                            sparse::deserialize_view(raw.bytes());
                        // Alg. 4 line 10: return locally-sent entries that did
                        // not survive the global selection.
                        std::size_t gi = 0;
                        for (std::size_t li = 0; li < local.nnz(); ++li) {
                            const std::int32_t idx = local.indices[li];
                            while (gi < global.nnz() && global.indices[gi] < idx) ++gi;
                            const bool kept =
                                gi < global.nnz() && global.indices[gi] == idx;
                            if (!kept) {
                                residual[static_cast<std::size_t>(idx)] += local.values[li];
                            }
                        }
                        scatter_mean(global, workers, update);
                    }
                }
                const double v1 = comm.clock().now_s();

                const double u0 = now_host_s();
                std::vector<float> delta(m);
                for (std::size_t i = 0; i < m; ++i) {
                    velocity[i] = config.momentum * velocity[i] + update[i];
                    delta[i] = -plan.lr * velocity[i];
                }
                model->add_flat_delta(delta);
                const double u1 = now_host_s();
                exchange_telemetry(
                    t1 - t0, t2 - t1, v1 - v0, u1 - u0,
                    dense_agg ? -1 : static_cast<std::int64_t>(local.nnz()),
                    worker_pre);

                if (wid == 0) {
                    total_compute += t1 - t0;
                    total_compress += t2 - t1;
                    total_comm += v1 - v0;
                    ++worker0_iters;
                }
            }

            if (!is_server) {
                train::EpochMetrics em;
                em.epoch = epoch;
                em.density = plan.density;
                em.train_loss = epoch_loss / config.iters_per_epoch;
                if (eval) {
                    nn::Batch eb = eval();
                    if (eb.x.numel() > 0) {
                        em.val_loss = model->eval_loss(eb);
                        em.val_accuracy = model->eval_accuracy(eb);
                    }
                }
                if (wid == 0) epochs_out.push_back(em);
            }
        }

        if (!is_server && wid == 0) {
            result.final_params = model->flat_params();
            result.rank0_comm = comm.stats();  // worker 0's link stats
        }
    };

    comm::Cluster::run(world, net, node);

    result.epochs = std::move(epochs_out);
    if (worker0_iters > 0) {
        result.mean_compute_s = total_compute / static_cast<double>(worker0_iters);
        result.mean_compress_s = total_compress / static_cast<double>(worker0_iters);
        result.mean_comm_virtual_s = total_comm / static_cast<double>(worker0_iters);
    }
    return result;
}

}  // namespace gtopk::ps
