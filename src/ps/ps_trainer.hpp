// Parameter-Server S-SGD — the paper's footnote 2 claims gTop-k "is also
// applicable to the Parameter Server based distributed SGD"; this module
// realizes that claim on the same transport substrate and makes it
// measurable.
//
// Topology: rank 0 is the server, ranks 1..P are the P workers.
// Per iteration:
//   worker  computes its gradient, applies the same residual/top-k
//           bookkeeping as Algorithm 4, PUSHes its k-sparse gradient to
//           the server;
//   server  sums the P sparse gradients, re-selects the global top-k
//           (identical math to Algorithm 2's global selection), and sends
//           the selected [V, I] back to every worker (star topology);
//   worker  returns its unselected-but-sent entries to the residual
//           (Alg. 4 line 10) and applies the momentum-SGD update.
//
// Semantics: PS-gTop-k computes exactly the same update as the
// decentralized naive gTop-k (Algorithm 2); the integration tests assert
// the two produce BIT-IDENTICAL trajectories. What changes is the
// communication pattern: the server link carries O(kP) each way, so on
// flat low-bandwidth networks the decentralized tree wins — quantified by
// ps_cost_model and bench_ps_vs_allreduce.
#pragma once

#include "comm/network_model.hpp"
#include "train/trainer.hpp"

namespace gtopk::ps {

enum class PsAggregation {
    Dense,  // server averages full dense gradients
    Gtopk,  // server performs the global top-k selection
};

struct PsTrainConfig {
    PsAggregation aggregation = PsAggregation::Gtopk;
    int epochs = 10;
    int iters_per_epoch = 50;
    float lr = 0.05f;
    float momentum = 0.9f;
    double density = 1e-3;
    std::vector<double> warmup_densities;
    float warmup_lr_scale = 0.25f;
    std::uint64_t model_seed = 42;

    /// Cluster telemetry plane (obs/telemetry.hpp), same contract as
    /// train::TrainConfig::telemetry: every rank — the server included —
    /// joins the per-iteration stats allgather. The server folds zeroed
    /// phase timings (it has no compute/select/update phases) but real wire
    /// deltas, so gtopktop shows the star topology's hub asymmetry.
    /// Must cover workers + 1 ranks and outlive train_parameter_server.
    obs::Telemetry* telemetry = nullptr;
};

/// Train with `workers` workers (world size is workers + 1: rank 0 is the
/// server). Batch/eval providers see WORKER indices 0..workers-1.
train::TrainResult train_parameter_server(int workers, comm::NetworkModel net,
                                          const PsTrainConfig& config,
                                          const train::ModelFactory& factory,
                                          const train::TrainBatchProvider& batches,
                                          const train::EvalBatchProvider& eval);

}  // namespace gtopk::ps
