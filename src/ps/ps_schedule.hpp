// Per-iteration communication schedule of the parameter-server baseline:
// every worker pushes its gradient to the server (rank 0), the server
// aggregates and answers every worker with the global update.
//
// Unlike the SPMD collectives, the PS protocol runs on FIXED user tags
// (comm/tags.hpp: kTagPsPush / kTagPsPull) rather than a fresh-tag block —
// the schedule is emitted with absolute_tags set, and the static checker
// verifies those tags stay below the fresh base. ps_trainer.cpp executes
// exactly this program; src/analysis/ verifies the same one.
#pragma once

#include <cstdint>

#include "collectives/schedule.hpp"

namespace gtopk::ps {

/// One training iteration's exchange for `workers` workers (world size is
/// workers + 1; rank 0 is the server). Phase 0 = push (worker -> server, in
/// ascending worker order on the server), phase 1 = pull (server -> worker,
/// ascending). `push_bytes` / `pull_bytes` are exact dense payload sizes or
/// collectives::kVariableBytes for sparse (data-dependent) payloads. Op
/// operand `a` holds the worker id.
collectives::Schedule ps_iteration_schedule(int workers, std::int64_t push_bytes,
                                            std::int64_t pull_bytes);

}  // namespace gtopk::ps
