#include "ps/ps_cost_model.hpp"

namespace gtopk::ps {

double ps_dense_time_s(const comm::NetworkModel& net, int workers,
                       std::uint64_t elements) {
    if (workers <= 0) return 0.0;
    return static_cast<double>(workers + 1) * net.transfer_time_elems(elements);
}

double ps_gtopk_time_s(const comm::NetworkModel& net, int workers, std::uint64_t k) {
    if (workers <= 0) return 0.0;
    return static_cast<double>(workers + 1) * net.transfer_time_elems(2 * k);
}

}  // namespace gtopk::ps
