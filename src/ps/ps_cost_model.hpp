// Analytic per-iteration communication cost of the Parameter-Server
// topology under the alpha-beta model, for comparison against the
// decentralized AllReduce costs of Table I.
//
// Modeling choice (matches the simulator): the P workers' pushes travel in
// parallel, so the inbound phase costs one transfer; the server's replies
// are serialized on its uplink, so the outbound phase costs P transfers.
// One PS round therefore costs (P + 1)(alpha + n beta) — linear in P, which
// is exactly why the paper's decentralized O(k logP) tree is preferable on
// flat networks once P grows.
#pragma once

#include <cstdint>

#include "comm/network_model.hpp"

namespace gtopk::ps {

/// Dense PS round: n = m elements each way.
double ps_dense_time_s(const comm::NetworkModel& net, int workers,
                       std::uint64_t elements);

/// gTop-k PS round: n = 2k elements ([V, I]) each way.
double ps_gtopk_time_s(const comm::NetworkModel& net, int workers, std::uint64_t k);

}  // namespace gtopk::ps
