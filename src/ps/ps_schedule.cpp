#include "ps/ps_schedule.hpp"

#include <stdexcept>

#include "comm/tags.hpp"

namespace gtopk::ps {

using collectives::CommOp;
using collectives::Schedule;

Schedule ps_iteration_schedule(int workers, std::int64_t push_bytes,
                               std::int64_t pull_bytes) {
    if (workers < 1) throw std::invalid_argument("ps schedule: need >= 1 worker");
    Schedule s;
    s.proto = "ps.iteration";
    s.world = workers + 1;
    s.tag_count = 0;
    s.absolute_tags = true;
    s.ranks.resize(static_cast<std::size_t>(s.world));

    auto push_op = [](int rank, CommOp::Kind kind, int peer, int tag, int round,
                      int phase, std::int64_t bytes, std::int64_t worker_id) {
        CommOp op;
        op.kind = kind;
        op.peer = peer;
        op.tag_offset = tag;
        op.round = round;
        op.phase = phase;
        op.bytes = bytes;
        op.a = worker_id;
        op.b = worker_id + 1;
        return op;
    };

    for (int w = 1; w <= workers; ++w) {
        // Phase 0 — push: worker w sends, the server receives in ascending
        // worker order (the trainer's blocking per-worker recv loop).
        s.ranks[static_cast<std::size_t>(w)].push_back(push_op(
            w, CommOp::Kind::Send, 0, comm::kTagPsPush, 0, 0, push_bytes, w - 1));
        s.ranks[0].push_back(push_op(0, CommOp::Kind::Recv, w, comm::kTagPsPush, 0, 0,
                                     push_bytes, w - 1));
    }
    for (int w = 1; w <= workers; ++w) {
        // Phase 1 — pull: the server answers every worker, ascending.
        s.ranks[0].push_back(push_op(0, CommOp::Kind::Send, w, comm::kTagPsPull, 1, 1,
                                     pull_bytes, w - 1));
        s.ranks[static_cast<std::size_t>(w)].push_back(push_op(
            w, CommOp::Kind::Recv, 0, comm::kTagPsPull, 1, 1, pull_bytes, w - 1));
    }
    return s;
}

}  // namespace gtopk::ps
