#include "analysis/conformance.hpp"

#include <algorithm>
#include <stdexcept>

#include "comm/tags.hpp"

namespace gtopk::analysis {

using collectives::CommOp;
using collectives::Schedule;
using collectives::kVariableBytes;

SchedulePredictor::SchedulePredictor(int world)
    : world_(world),
      fresh_cursor_(comm::kFreshTagBase),
      async_cursor_(comm::kAsyncTagBase) {
    if (world < 1) throw std::invalid_argument("SchedulePredictor: world < 1");
    edges_.resize(static_cast<std::size_t>(world) * static_cast<std::size_t>(world));
}

void SchedulePredictor::add_with_base(const Schedule& sched, int base) {
    if (sched.world != world_) {
        throw std::invalid_argument("SchedulePredictor: world mismatch for " +
                                    sched.proto);
    }
    for (int rank = 0; rank < world_; ++rank) {
        for (const CommOp& op : sched.rank_ops(rank)) {
            if (op.kind != CommOp::Kind::Send) continue;
            ExpectedMsg m;
            m.src = rank;
            m.dst = op.peer;
            m.tag = sched.absolute_tags ? op.tag_offset : base + op.tag_offset;
            m.bytes = op.bytes;
            m.proto = sched.proto;
            m.round = op.round;
            edges_[static_cast<std::size_t>(rank) * static_cast<std::size_t>(world_) +
                   static_cast<std::size_t>(op.peer)]
                .push_back(std::move(m));
            ++total_;
        }
    }
}

void SchedulePredictor::add(const Schedule& sched) {
    add_with_base(sched, fresh_cursor_);
    if (!sched.absolute_tags) fresh_cursor_ += sched.tag_count;
}

void SchedulePredictor::add_async(const Schedule& sched) {
    if (sched.absolute_tags) {
        throw std::invalid_argument(
            "SchedulePredictor::add_async: absolute-tag schedule " + sched.proto +
            " cannot ride the async band");
    }
    add_with_base(sched, async_cursor_);
    async_cursor_ += sched.tag_count;
}

void SchedulePredictor::add_n(const Schedule& sched, int times) {
    for (int i = 0; i < times; ++i) add(sched);
}

const std::vector<ExpectedMsg>& SchedulePredictor::edge(int src, int dst) const {
    return edges_[static_cast<std::size_t>(src) * static_cast<std::size_t>(world_) +
                  static_cast<std::size_t>(dst)];
}

ConformanceReport diff_conformance(const SchedulePredictor& predictor,
                                   std::span<const comm::RecordedMsg> actual,
                                   ConformanceMode mode) {
    const int world = predictor.world();
    ConformanceReport report;
    report.expected_messages = predictor.total_messages();
    report.actual_messages = static_cast<std::int64_t>(actual.size());

    // Split the recorded stream into per-edge subsequences (already in
    // sender program order within each edge).
    std::vector<std::vector<comm::RecordedMsg>> got(
        static_cast<std::size_t>(world) * static_cast<std::size_t>(world));
    for (const comm::RecordedMsg& m : actual) {
        if (m.src < 0 || m.src >= world || m.dst < 0 || m.dst >= world) {
            report.ok = false;
            report.divergence = "recorded message with out-of-world endpoint " +
                                std::to_string(m.src) + " -> " + std::to_string(m.dst);
            return report;
        }
        got[static_cast<std::size_t>(m.src) * static_cast<std::size_t>(world) +
            static_cast<std::size_t>(m.dst)]
            .push_back(m);
    }

    // Earliest-seq divergence across edges = "first" in a run-meaningful
    // sense; length mismatches report at the end of the shorter stream.
    std::uint64_t best_seq = UINT64_MAX;
    std::string best;
    auto report_at = [&](std::uint64_t seq, std::string msg) {
        if (seq < best_seq) {
            best_seq = seq;
            best = std::move(msg);
        }
    };

    for (int src = 0; src < world; ++src) {
        for (int dst = 0; dst < world; ++dst) {
            std::vector<ExpectedMsg> exp_by_tag;
            const std::vector<ExpectedMsg>* exp_p = &predictor.edge(src, dst);
            auto& act =
                got[static_cast<std::size_t>(src) * static_cast<std::size_t>(world) +
                    static_cast<std::size_t>(dst)];
            if (mode == ConformanceMode::kTagStream) {
                // Collapse nondeterministic cross-handle interleaving: both
                // sides keyed by tag, within-tag order preserved.
                exp_by_tag = *exp_p;
                std::stable_sort(
                    exp_by_tag.begin(), exp_by_tag.end(),
                    [](const ExpectedMsg& a, const ExpectedMsg& b) { return a.tag < b.tag; });
                std::stable_sort(act.begin(), act.end(),
                                 [](const comm::RecordedMsg& a, const comm::RecordedMsg& b) {
                                     return a.tag < b.tag;
                                 });
                exp_p = &exp_by_tag;
            }
            const auto& exp = *exp_p;
            const std::size_t n = std::min(exp.size(), act.size());
            bool edge_diverged = false;
            for (std::size_t i = 0; i < n; ++i) {
                const ExpectedMsg& e = exp[i];
                const comm::RecordedMsg& a = act[i];
                if (a.tag != e.tag ||
                    (e.bytes != kVariableBytes && a.bytes != e.bytes)) {
                    report_at(a.seq,
                              "edge " + std::to_string(src) + " -> " +
                                  std::to_string(dst) + ", message #" +
                                  std::to_string(i) + ": expected tag " +
                                  std::to_string(e.tag) +
                                  (e.bytes == kVariableBytes
                                       ? std::string()
                                       : " (" + std::to_string(e.bytes) + " bytes)") +
                                  " from " + e.proto + " round " +
                                  std::to_string(e.round) + ", observed tag " +
                                  std::to_string(a.tag) + " (" +
                                  std::to_string(a.bytes) + " bytes)");
                    edge_diverged = true;
                    break;
                }
                ++report.matched_messages;
            }
            if (edge_diverged) continue;
            if (act.size() > exp.size()) {
                report_at(act[exp.size()].seq,
                          "edge " + std::to_string(src) + " -> " + std::to_string(dst) +
                              ": " + std::to_string(act.size() - exp.size()) +
                              " extra message(s) beyond the " +
                              std::to_string(exp.size()) + " scheduled, first has tag " +
                              std::to_string(act[exp.size()].tag));
            } else if (exp.size() > act.size()) {
                const ExpectedMsg& e = exp[act.size()];
                report_at(UINT64_MAX - 1,
                          "edge " + std::to_string(src) + " -> " + std::to_string(dst) +
                              ": missing " + std::to_string(exp.size() - act.size()) +
                              " scheduled message(s), next expected tag " +
                              std::to_string(e.tag) + " from " + e.proto + " round " +
                              std::to_string(e.round));
            }
        }
    }

    if (!best.empty()) {
        report.ok = false;
        report.divergence = std::move(best);
    }
    return report;
}

}  // namespace gtopk::analysis
