// Static model checker for collective communication schedules.
//
// verify_schedule() takes a Schedule — the exact op program the live
// collectives execute (schedule.hpp) — and proves, without threads:
//
//   * well-formedness     peers in range, no self-messaging, sane ranges
//   * tag discipline      fresh-block offsets inside [0, tag_count);
//                         absolute (user) tags inside [0, kFreshTagBase)
//   * FIFO-unambiguity    no (src, dst, tag) is sent twice within one
//                         schedule instance, so wildcard-free matching
//                         never depends on arrival interleavings
//   * match-completeness  every send consumed, every recv satisfied
//   * deadlock-freedom    simulated execution (eager buffered sends,
//                         blocking matched recvs — the Mailbox semantics)
//                         terminates; on a stall the wait-for graph names
//                         the cycle or the missing message
//
// The same pass simulates the alpha-beta virtual clock, so when every op
// carries exact bytes the critical-path time comes out for free and can be
// checked against cost_model.hpp (the paper's Table I column).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "collectives/schedule.hpp"
#include "comm/network_model.hpp"

namespace gtopk::analysis {

/// One failed check. `rank` is -1 for schedule-global violations.
struct Violation {
    std::string check;   // "well-formed", "tag-range", "fifo", "match", "deadlock"
    int rank = -1;
    std::string detail;  // human-readable, names ops/peers/tags
};

/// Per-rank traffic totals derived from the op program.
struct RankTraffic {
    std::int64_t sends = 0;
    std::int64_t recvs = 0;
    /// Sum of exact send bytes; meaningful only when bytes_exact.
    std::int64_t bytes_sent = 0;
    /// False when any op on this rank carries kVariableBytes.
    bool bytes_exact = true;
};

struct VerifyResult {
    std::vector<Violation> violations;
    std::vector<RankTraffic> per_rank;
    std::int64_t total_messages = 0;
    std::int64_t total_bytes = 0;   // meaningful only when bytes_exact
    bool bytes_exact = true;
    /// Simulated alpha-beta completion time (max over rank clocks) when a
    /// network model was supplied, all bytes are exact and the schedule is
    /// violation-free; nullopt otherwise.
    std::optional<double> critical_path_s;

    bool ok() const { return violations.empty(); }
};

/// Run every static check over `sched`. `net` (optional) prices the
/// simulated execution so critical_path_s can be compared against the
/// closed forms in collectives/cost_model.hpp.
VerifyResult verify_schedule(const collectives::Schedule& sched,
                             const comm::NetworkModel* net = nullptr);

/// Concurrent schedule-set checker — the static mirror of N AsyncCollective
/// handles in flight on one Communicator (collectives/async.hpp). `parts[i]`
/// executes with its tag offsets rebased to `tag_bases[i]` (the value
/// fresh_async_tags returned for that handle). Proves, on top of the
/// per-part verify_schedule checks:
///
///   * band layout       every base at or above the fresh-tag base, every
///                       [base_i, base_i + tag_count_i) band pairwise
///                       disjoint ("band-overlap" violations) — the property
///                       that makes overlapped runs tag-unambiguous
///   * cross-part fifo   no (src, dst, absolute tag) sent by two parts
///   * deadlock-freedom  combined simulation of the pump-all executor:
///                       every rank interleaves all parts' programs, eager
///                       buffered sends, recvs block only their own part
///
/// per_rank / totals aggregate across parts; critical_path_s prices the
/// combined execution (one clock per rank — the executor is one thread per
/// rank) when `net` is given and all bytes are exact.
VerifyResult verify_concurrent_schedules(
    std::span<const collectives::Schedule> parts, std::span<const int> tag_bases,
    const comm::NetworkModel* net = nullptr);

/// Survivor-confinement check for regrouped schedules (the static mirror of
/// membership epochs): every op must live ON a survivor rank and talk TO a
/// survivor rank — dead ranks neither run programs nor appear as peers.
/// `survivors` are strictly ascending physical ranks < sched.world; any
/// op placed on or addressing a non-survivor is a violation ("confinement").
std::vector<Violation> verify_survivor_confinement(
    const collectives::Schedule& sched, std::span<const int> survivors);

}  // namespace gtopk::analysis
