// Reconnect / session-resume model for protocheck: ONE directed link of a
// TcpTransport mesh (the higher rank dials, the lower rank accepts), driven
// through the SAME fsm::link_* transition functions the socket layer
// executes, under an adversary that breaks the established connection,
// drops RESUME and RESUME_OK frames, reorders delayed dials behind fresh
// ones, and expires either side's patience at any point.
//
// The model is deliberately faithful to the socket realities the FSM has
// to survive:
//   * loss detection is ASYMMETRIC — each endpoint notices the broken
//     connection independently, so the acceptor can see a resume dial
//     while it still believes the old connection is up;
//   * the dialer's attempts are SYNCHRONOUS — dialing again abandons the
//     previous connection, so a RESUME_OK for an earlier attempt dies with
//     its socket, but the earlier RESUME may still sit in the acceptor's
//     listen backlog and be read later (the stale-dial hazard);
//   * accepting such a stale dial installs a connection the dialer already
//     closed — the fabric then reports the link down AGAIN, which the
//     protocol must absorb.
//
// Checked safety invariants (evaluated independently of the FSM):
//   stale-session-accepted  the acceptor installed a proposal that does not
//                           advance its session (the --seed-break
//                           accept-stale bug class)
//   session-divergence      both endpoints up and quiescent (no frames or
//                           failure notifications in flight) yet they
//                           disagree on the session id
//   dead-resurrected        a kDead endpoint left kDead
//   attempts-unbounded      the dialer exceeded its dial budget
//
// Liveness (fair: detect, dial, deliver, expire — the runtime guarantees
// all of them eventually happen): every run converges to quiescence with
// both endpoints up on one agreed session, or both endpoints dead.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "comm/reconnect_fsm.hpp"

namespace gtopk::analysis::protocheck {

struct ReconnectModelConfig {
    /// Connection-loss events the adversary may inject on the established
    /// link (each downs both endpoints, detected independently).
    int max_losses = 1;
    /// Dial budget per down incarnation (kept small: state count grows
    /// with the session-id range, which is 1 + losses * attempts).
    std::uint64_t max_attempts = 3;
};

class ReconnectModel {
public:
    struct Action {
        enum class Kind : std::uint8_t {
            kConnLoss,       // adversary breaks the established connection
            kDetectDialer,   // dialer's fabric reports the loss
            kDetectAcceptor, // acceptor's fabric reports the loss
            kDial,           // dialer's backoff fires: admit one attempt
            kDeliverResume,  // acceptor reads a RESUME (value = proposal)
            kDropResume,     // adversary loses a RESUME
            kDeliverOk,      // dialer reads the RESUME_OK (value = session)
            kDropOk,         // adversary loses the RESUME_OK
            kExpireDialer,   // dialer's host-time patience cap fires
            kExpireAcceptor, // acceptor's passive patience fires
        };
        Kind kind = Kind::kConnLoss;
        std::uint64_t value = 0;  // proposal/session for deliver/drop kinds
    };

    struct State {
        comm::fsm::LinkState dialer;
        comm::fsm::LinkState acceptor;
        bool pend_down_dialer = false;    // loss noticed but not yet handled
        bool pend_down_acceptor = false;
        /// RESUME proposals in flight (including abandoned-backlog dials).
        std::vector<std::uint64_t> resumes;
        /// RESUME_OK confirmations in flight (dies when the dialer re-dials).
        std::vector<std::uint64_t> oks;
        /// Proposal of the dialer's CURRENT outstanding attempt (0 = none):
        /// only this one rides a socket the dialer still holds open.
        std::uint64_t cur_proposal = 0;
        int losses_left = 0;
        std::string violation;  // set by apply()'s independent spec checks
    };

    explicit ReconnectModel(ReconnectModelConfig cfg) : cfg_(cfg) {}

    State initial() const;
    std::vector<Action> actions(const State& s) const;
    State apply(const State& s, const Action& a) const;
    std::string describe(const Action& a) const;
    std::optional<std::string> check(const State& s) const;
    bool is_goal(const State& s) const;
    bool is_fair(const Action& a) const;
    std::vector<std::uint64_t> encode(const State& s) const;

    const ReconnectModelConfig& config() const { return cfg_; }

private:
    comm::fsm::ReconnectPolicy policy() const;

    ReconnectModelConfig cfg_;
};

}  // namespace gtopk::analysis::protocheck
