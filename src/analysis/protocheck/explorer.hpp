// Explicit-state explorer for the protocheck model checker.
//
// A Model describes a small-world protocol instance as a labeled transition
// system over VALUE-TYPE states:
//
//   struct Model {
//     struct State { ... };                       // copyable value
//     struct Action { ... };                      // copyable value
//     State initial() const;
//     std::vector<Action> actions(const State&) const;   // enabled actions
//     State apply(const State&, const Action&) const;    // successor
//     std::string describe(const Action&) const;         // trace labels
//     // Invariant check: name of the violated invariant, nullopt if sound.
//     std::optional<std::string> check(const State&) const;
//     bool is_goal(const State&) const;           // liveness target
//     bool is_fair(const Action&) const;          // guaranteed-to-fire class
//     // Canonical fingerprint: equal iff states are equivalent (symmetry
//     // reduction folds rank permutations here). Used ONLY as the
//     // visited-set key; stored states stay concrete so every trace is a
//     // real executable run.
//     std::vector<std::uint64_t> encode(const State&) const;
//   };
//
// explore() runs breadth-first search from initial() with a canonical-key
// visited set, checking every discovered state's invariants. The FIRST
// violation aborts the search with a minimal-depth counterexample trace
// (BFS order guarantees minimality over canonical classes). A state with
// no enabled actions that is not a goal is reported as a deadlock.
//
// Liveness under fairness: after a clean sweep, every reachable state must
// be able to reach a goal state using FAIR actions only — fair actions are
// the ones the runtime guarantees eventually happen (a pending send is
// sent, an in-flight message is delivered or dropped BY the adversary's
// budget, the backoff timer fires recover). A reachable state with no fair
// path to any goal is a livelock: the adversary can park the protocol
// there forever even though the network eventually behaves. Computed as
// reverse BFS over the fair edge set from all goal states.
#pragma once

#include <cstdint>
#include <cstring>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace gtopk::analysis::protocheck {

struct ExploreLimits {
    /// Hard cap on discovered states; exceeding it truncates the sweep
    /// (report.truncated) instead of running away. Verification is only
    /// exhaustive when the sweep finishes under the cap.
    std::uint64_t max_states = 2'000'000;
};

template <typename Model>
struct TraceStep {
    typename Model::Action action;
    std::string label;
};

template <typename Model>
struct CheckReport {
    std::uint64_t states = 0;
    std::uint64_t transitions = 0;
    std::uint64_t max_depth = 0;
    bool truncated = false;
    /// Name of the first violated invariant ("deadlock" for a stuck
    /// non-goal state, "livelock: ..." for a fairness violation).
    std::optional<std::string> violation;
    /// Executable action sequence from the initial state into the
    /// violating (or livelocked) state.
    std::vector<TraceStep<Model>> trace;

    bool clean() const { return !violation && !truncated; }
};

namespace detail {

inline std::string key_bytes(const std::vector<std::uint64_t>& enc) {
    std::string k(enc.size() * sizeof(std::uint64_t), '\0');
    if (!enc.empty()) std::memcpy(k.data(), enc.data(), k.size());
    return k;
}

}  // namespace detail

template <typename Model>
CheckReport<Model> explore(const Model& model, const ExploreLimits& limits = {}) {
    using State = typename Model::State;
    CheckReport<Model> report;

    std::vector<State> states;
    std::vector<std::uint32_t> depth;
    // (parent id, index into actions(parent)); root parent is itself.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> parent;
    std::vector<std::vector<std::uint32_t>> fair_out;  // fair successor ids
    std::unordered_map<std::string, std::uint32_t> visited;

    const auto rebuild_trace = [&](std::uint32_t id) {
        std::vector<std::uint32_t> chain;
        while (parent[id].first != id) {
            chain.push_back(id);
            id = parent[id].first;
        }
        for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
            const auto& [pid, act_idx] = parent[*it];
            typename Model::Action a = model.actions(states[pid])[act_idx];
            report.trace.push_back({a, model.describe(a)});
        }
    };

    const State root = model.initial();
    visited.emplace(detail::key_bytes(model.encode(root)), 0);
    states.push_back(root);
    depth.push_back(0);
    parent.emplace_back(0, 0);
    fair_out.emplace_back();
    if (auto v = model.check(root)) {
        report.states = 1;
        report.violation = v;
        return report;
    }

    std::deque<std::uint32_t> frontier{0};
    while (!frontier.empty()) {
        if (states.size() > limits.max_states) {
            report.truncated = true;
            break;
        }
        const std::uint32_t sid = frontier.front();
        frontier.pop_front();
        // actions() of a copy: `states` may reallocate while we expand.
        const std::vector<typename Model::Action> acts = model.actions(states[sid]);
        if (acts.empty() && !model.is_goal(states[sid])) {
            report.violation = "deadlock";
            rebuild_trace(sid);
            report.states = states.size();
            report.max_depth = depth[sid];
            return report;
        }
        for (std::uint32_t ai = 0; ai < acts.size(); ++ai) {
            State next = model.apply(states[sid], acts[ai]);
            ++report.transitions;
            const std::string key = detail::key_bytes(model.encode(next));
            auto [it, inserted] =
                visited.emplace(key, static_cast<std::uint32_t>(states.size()));
            if (inserted) {
                const std::uint32_t nid = it->second;
                states.push_back(std::move(next));
                depth.push_back(depth[sid] + 1);
                parent.emplace_back(sid, ai);
                fair_out.emplace_back();
                if (depth[nid] > report.max_depth) report.max_depth = depth[nid];
                if (auto v = model.check(states[nid])) {
                    report.violation = v;
                    rebuild_trace(nid);
                    report.states = states.size();
                    return report;
                }
                frontier.push_back(nid);
            }
            if (model.is_fair(acts[ai])) fair_out[sid].push_back(it->second);
        }
    }
    report.states = states.size();
    if (report.truncated) return report;

    // Liveness: reverse BFS from the goal set over fair edges; every
    // reachable state must be co-reachable or the adversary owns a trap.
    std::vector<std::vector<std::uint32_t>> fair_in(states.size());
    for (std::uint32_t s = 0; s < states.size(); ++s) {
        for (std::uint32_t d : fair_out[s]) fair_in[d].push_back(s);
    }
    std::vector<char> co(states.size(), 0);
    std::deque<std::uint32_t> rq;
    for (std::uint32_t s = 0; s < states.size(); ++s) {
        if (model.is_goal(states[s])) {
            co[s] = 1;
            rq.push_back(s);
        }
    }
    while (!rq.empty()) {
        const std::uint32_t s = rq.front();
        rq.pop_front();
        for (std::uint32_t p : fair_in[s]) {
            if (!co[p]) {
                co[p] = 1;
                rq.push_back(p);
            }
        }
    }
    for (std::uint32_t s = 0; s < states.size(); ++s) {
        if (!co[s]) {
            report.violation =
                "livelock: no fair path to a goal state";
            rebuild_trace(s);
            return report;
        }
    }
    return report;
}

}  // namespace gtopk::analysis::protocheck
