// Conformance bridge between protocheck models and the real
// ReliableTransport / MembershipService.
//
// The models and the implementations execute the same fsm::* transition
// functions, but the implementations wrap them in threads, mailboxes,
// backoff timers and byte-level envelopes — the bridge demonstrates that
// the wrapping preserves the modeled behavior, in both directions:
//
//   model -> code   a counterexample trace found by the checker (under a
//                   seeded invariant break) replays through the REAL stack
//                   and reproduces the real failure the model predicted;
//   code -> model   random adversary walks through the model replay
//                   through the real stack and the observable outcomes
//                   (app-delivered sequence, event counters) match exactly.
//
// Determinism: replay configures an effectively-infinite retransmit
// backoff so the transport's own recovery never fires spontaneously —
// recovery happens exactly where the trace says (recover_now), making the
// real run a function of the trace alone.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/protocheck/arq_model.hpp"
#include "analysis/protocheck/membership_model.hpp"
#include "comm/membership_fsm.hpp"

namespace gtopk::analysis::protocheck {

struct ArqReplayResult {
    /// App-visible payload sequence numbers, in delivery order.
    std::vector<std::uint64_t> delivered;
    std::uint64_t retransmits = 0;
    std::uint64_t corrupt_dropped = 0;
    std::uint64_t dup_dropped = 0;
    std::uint64_t stale_skipped = 0;
};

/// Walk `trace` through a real ReliableTransport (over a scripted fabric
/// whose drop/dup/reorder/corrupt/kill knobs the trace drives) and report
/// what the application actually observed.
ArqReplayResult replay_arq_trace(const ArqModelConfig& cfg,
                                 const std::vector<ArqModel::Action>& trace);

/// Walk `trace` through the ArqModel itself and report the predicted
/// observations (delivered = seqs with fate kDelivered, ascending — the
/// in-order invariant makes that the delivery order) plus the final state.
struct ArqModelOutcome {
    ArqReplayResult predicted;
    std::string violation;  // empty when the trace stays invariant-clean
};
ArqModelOutcome simulate_arq_trace(const ArqModelConfig& cfg,
                                   const std::vector<ArqModel::Action>& trace);

/// Replay + simulate and compare. Returns nullopt on exact agreement,
/// otherwise a human-readable description of the first divergence.
std::optional<std::string> arq_conformance_diff(
    const ArqModelConfig& cfg, const std::vector<ArqModel::Action>& trace);

/// Random adversary walks: `samples` traces of at most `max_steps` actions
/// each (uniform over enabled actions, seeded), every one checked with
/// arq_conformance_diff. Returns the first divergence found.
std::optional<std::string> arq_random_conformance(const ArqModelConfig& cfg,
                                                  int samples, int max_steps,
                                                  std::uint64_t seed);

/// Outcome of one rank's regroup() call during a membership replay.
struct MembershipReplayOutcome {
    int rank = 0;
    enum class Kind : std::uint8_t { kView, kAbort, kRefused } kind = Kind::kView;
    comm::MembershipView view;  // valid for kView
};

struct MembershipReplayResult {
    std::vector<MembershipReplayOutcome> outcomes;  // one per trace Join
};

/// Drive a real MembershipService through the Join/Kill/Leave skeleton of
/// `trace` (Evaluate/Wake/GraceExpire are the service's own clockwork:
/// replay uses a short real grace window and waits joins out). Outcomes
/// are deterministic as long as every trace action lands well inside the
/// grace window, which the generous pacing guarantees.
MembershipReplayResult replay_membership_trace(
    const MembershipModelConfig& cfg,
    const std::vector<MembershipModel::Action>& trace);

/// Compare a real replay against the model's finalized views for the same
/// trace: every view the model finalized must be returned by some real
/// joiner, and a model trace with no finalization must produce no real
/// views. Returns nullopt on agreement.
std::optional<std::string> membership_conformance_diff(
    const MembershipModelConfig& cfg,
    const std::vector<MembershipModel::Action>& trace);

}  // namespace gtopk::analysis::protocheck
