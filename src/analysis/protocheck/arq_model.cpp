#include "analysis/protocheck/arq_model.hpp"

#include <algorithm>

namespace gtopk::analysis::protocheck {

namespace fsm = comm::fsm;

ArqModel::State ArqModel::initial() const {
    State s;
    s.fate.assign(static_cast<std::size_t>(cfg_.max_msgs), SeqFate::kPending);
    return s;
}

void ArqModel::app_push(State& s, std::uint64_t seq, int epoch) {
    if (epoch < s.rx_floor) {
        // Mailbox epoch floor: consumed and rejected, never seen by the app.
        if (seq >= 1 && seq <= s.fate.size() &&
            s.fate[seq - 1] == SeqFate::kPending) {
            s.fate[seq - 1] = SeqFate::kRejected;
        }
        return;
    }
    if (seq <= s.last_app_seq && s.violation.empty()) {
        s.violation = "out-of-order-delivery";
        return;
    }
    s.last_app_seq = seq;
    if (seq >= 1 && seq <= s.fate.size()) {
        if (s.fate[seq - 1] != SeqFate::kPending && s.violation.empty()) {
            s.violation = "out-of-order-delivery";  // fate already sealed
            return;
        }
        s.fate[seq - 1] = SeqFate::kDelivered;
    }
}

void ArqModel::release_parked(State& s, std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) {
        const auto it = s.parked_epochs.begin();
        const std::uint64_t seq = it->first;
        const int epoch = it->second;
        s.parked_epochs.erase(it);
        app_push(s, seq, epoch);
    }
}

std::vector<ArqModel::Action> ArqModel::actions(const State& s) const {
    std::vector<Action> out;
    if (!s.violation.empty()) return out;  // violating states are terminal
    if (s.sender_alive && s.sent < cfg_.max_msgs) {
        out.push_back({Action::Kind::kSend, {}});
    }
    // One action per DISTINCT in-flight envelope: the fabric delivering
    // either of two identical duplicates is the same transition.
    for (std::size_t i = 0; i < s.flight.size(); ++i) {
        if (i > 0 && s.flight[i] == s.flight[i - 1]) continue;
        const Flight& f = s.flight[i];
        out.push_back({Action::Kind::kDeliver, f});
        if (cfg_.allow_drop) out.push_back({Action::Kind::kDrop, f});
        if (s.dups_used < cfg_.dup_budget) out.push_back({Action::Kind::kDup, f});
        if (s.corrupts_used < cfg_.corrupt_budget && !f.corrupt) {
            out.push_back({Action::Kind::kCorrupt, f});
        }
    }
    if (s.sender_alive &&
        fsm::arq_tx_buffer_index(s.tx, s.rx.expected).has_value()) {
        out.push_back({Action::Kind::kRecover, {}});
    }
    if (cfg_.allow_kill && s.sender_alive) {
        out.push_back({Action::Kind::kKillSender, {}});
    }
    if (s.bumps_used < cfg_.max_epoch_bumps) {
        out.push_back({Action::Kind::kEpochBump, {}});
    }
    return out;
}

ArqModel::State ArqModel::apply(const State& prev, const Action& a) const {
    State s = prev;
    const auto erase_one = [&s](const Flight& f) {
        const auto it = std::find(s.flight.begin(), s.flight.end(), f);
        s.flight.erase(it);
    };
    switch (a.kind) {
        case Action::Kind::kSend: {
            const fsm::TxSendDecision d =
                fsm::arq_tx_send(s.tx, s.shared_ack, /*dst_alive=*/true);
            for (std::uint64_t i = 0; i < d.gc; ++i) {
                s.buffer_epochs.erase(s.buffer_epochs.begin());
            }
            if (d.buffer) s.buffer_epochs.push_back(s.send_epoch);
            s.flight.push_back({d.seq, s.send_epoch, false});
            std::sort(s.flight.begin(), s.flight.end());
            ++s.sent;
            break;
        }
        case Action::Kind::kDeliver: {
            erase_one(a.flight);
            const fsm::RxDecision d = fsm::arq_rx_envelope(
                s.rx, a.flight.seq, /*checksum_ok=*/!a.flight.corrupt);
            switch (d.action) {
                case fsm::RxAction::kDropCorrupt:
                    ++s.counts.corrupt_dropped;
                    break;
                case fsm::RxAction::kDropDuplicate:
                    ++s.counts.dup_dropped;
                    break;
                case fsm::RxAction::kPark:
                    s.parked_epochs.emplace(a.flight.seq, a.flight.epoch);
                    break;
                case fsm::RxAction::kDeliver:
                    app_push(s, a.flight.seq, a.flight.epoch);
                    release_parked(s, d.release);
                    s.shared_ack = d.cum_ack;
                    break;
            }
            break;
        }
        case Action::Kind::kDrop:
            erase_one(a.flight);
            break;
        case Action::Kind::kDup:
            s.flight.push_back(a.flight);
            std::sort(s.flight.begin(), s.flight.end());
            ++s.dups_used;
            break;
        case Action::Kind::kCorrupt: {
            erase_one(a.flight);
            Flight f = a.flight;
            f.corrupt = true;
            s.flight.push_back(f);
            std::sort(s.flight.begin(), s.flight.end());
            ++s.corrupts_used;
            break;
        }
        case Action::Kind::kRecover: {
            // Mirrors ReliableTransport::recover exactly: pull gap heads
            // until the sender's buffer no longer covers `expected` — one
            // recovery pass, not one seq (recovery can race an in-flight
            // copy past the wire, which then dedup-drops on arrival).
            for (;;) {
                const std::optional<std::uint64_t> idx =
                    fsm::arq_tx_buffer_index(s.tx, s.rx.expected);
                if (!idx) break;
                const std::uint64_t seq = s.rx.expected;
                const int epoch = s.buffer_epochs[static_cast<std::size_t>(*idx)];
                const bool stale = epoch < s.rx_floor;
                const fsm::RxRecoverDecision d = fsm::arq_rx_recover(s.rx, stale);
                if (d.action == fsm::RecoverAction::kSkipStale) {
                    ++s.counts.stale_skipped;
                    if (seq >= 1 && seq <= s.fate.size() &&
                        s.fate[seq - 1] == SeqFate::kPending) {
                        s.fate[seq - 1] = SeqFate::kSkipped;
                    }
                } else {
                    ++s.counts.retransmits;
                    app_push(s, seq, epoch);
                }
                release_parked(s, d.release);
                s.shared_ack = d.cum_ack;
            }
            break;
        }
        case Action::Kind::kKillSender:
            s.sender_alive = false;
            break;
        case Action::Kind::kEpochBump: {
            ++s.rx_floor;
            s.send_epoch = s.rx_floor;
            ++s.bumps_used;
            // begin_epoch purge: stale parked envelopes are dropped; their
            // seq slots become gaps the stale recover path later skips.
            for (auto it = s.parked_epochs.begin(); it != s.parked_epochs.end();) {
                if (it->second < s.rx_floor) {
                    const std::uint64_t seq = it->first;
                    fsm::arq_rx_unpark(s.rx, seq);
                    it = s.parked_epochs.erase(it);
                    ++s.counts.stale_skipped;
                    if (seq >= 1 && seq <= s.fate.size() &&
                        s.fate[seq - 1] == SeqFate::kPending) {
                        s.fate[seq - 1] = SeqFate::kSkipped;
                    }
                } else {
                    ++it;
                }
            }
            break;
        }
    }
    return s;
}

std::string ArqModel::describe(const Action& a) const {
    const auto flight_str = [](const Flight& f) {
        return "seq=" + std::to_string(f.seq) + " epoch=" +
               std::to_string(f.epoch) + (f.corrupt ? " corrupt" : "");
    };
    switch (a.kind) {
        case Action::Kind::kSend: return "send";
        case Action::Kind::kDeliver: return "deliver " + flight_str(a.flight);
        case Action::Kind::kDrop: return "drop " + flight_str(a.flight);
        case Action::Kind::kDup: return "dup " + flight_str(a.flight);
        case Action::Kind::kCorrupt: return "corrupt " + flight_str(a.flight);
        case Action::Kind::kRecover: return "recover";
        case Action::Kind::kKillSender: return "kill-sender";
        case Action::Kind::kEpochBump: return "epoch-bump";
    }
    return "?";
}

std::optional<std::string> ArqModel::check(const State& s) const {
    if (!s.violation.empty()) return s.violation;
    if (!s.rx.parked.empty() && *s.rx.parked.begin() <= s.rx.expected) {
        return "parked-above-expected";
    }
    if (s.tx.base_seq + s.tx.buffered != s.tx.next_seq + 1) {
        return "tx-accounting";
    }
    if (s.tx.base_seq > s.tx.acked + 1 && s.sender_alive) {
        // GC moved past a seq nobody acked: a pristine copy is gone while
        // the receiver may still need it.
        return "gc-dropped-unacked";
    }
    if (s.shared_ack != s.rx.expected - 1) return "ack-consistency";
    if (s.rx.parked.size() != s.parked_epochs.size()) {
        return "parked-payload-mismatch";  // model bookkeeping desync
    }
    return std::nullopt;
}

bool ArqModel::is_goal(const State& s) const {
    if (!s.sender_alive) return true;  // dead sender: loss is the contract
    if (s.sent < cfg_.max_msgs) return false;
    for (int i = 0; i < s.sent; ++i) {
        if (s.fate[static_cast<std::size_t>(i)] == SeqFate::kPending) return false;
    }
    return true;
}

bool ArqModel::is_fair(const Action& a) const {
    switch (a.kind) {
        case Action::Kind::kSend:
        case Action::Kind::kDeliver:
        case Action::Kind::kRecover:
            return true;
        default:
            return false;
    }
}

std::vector<std::uint64_t> ArqModel::encode(const State& s) const {
    std::vector<std::uint64_t> e;
    e.reserve(24 + s.buffer_epochs.size() + 2 * s.parked_epochs.size() +
              s.flight.size());
    e.push_back(s.tx.next_seq);
    e.push_back(s.tx.base_seq);
    e.push_back(s.tx.buffered);
    e.push_back(s.tx.acked);
    for (const int ep : s.buffer_epochs) {
        e.push_back(static_cast<std::uint64_t>(ep));
    }
    e.push_back(0xffff'0001ULL);
    e.push_back(s.rx.expected);
    for (const auto& [seq, ep] : s.parked_epochs) {
        e.push_back(seq);
        e.push_back(static_cast<std::uint64_t>(ep));
    }
    e.push_back(0xffff'0002ULL);
    for (const Flight& f : s.flight) {
        e.push_back((f.seq << 16) | (static_cast<std::uint64_t>(f.epoch) << 1) |
                    (f.corrupt ? 1u : 0u));
    }
    e.push_back(0xffff'0003ULL);
    e.push_back(s.shared_ack);
    e.push_back(static_cast<std::uint64_t>(s.sent));
    e.push_back(static_cast<std::uint64_t>(s.dups_used));
    e.push_back(static_cast<std::uint64_t>(s.corrupts_used));
    e.push_back(static_cast<std::uint64_t>(s.bumps_used));
    e.push_back(s.sender_alive ? 1 : 0);
    e.push_back(static_cast<std::uint64_t>(s.send_epoch));
    e.push_back(static_cast<std::uint64_t>(s.rx_floor));
    std::uint64_t fates = 0;
    for (const SeqFate f : s.fate) {
        fates = (fates << 2) | static_cast<std::uint64_t>(f);
    }
    e.push_back(fates);
    e.push_back(s.last_app_seq);
    return e;
}

}  // namespace gtopk::analysis::protocheck
