// ARQ protocol model for protocheck: one directed edge (rank 0 -> rank 1)
// of ReliableTransport, driven through the SAME fsm::arq_* transition
// functions the transport executes, under an adversarial network that may
// drop, duplicate, reorder (delivery order is a free choice) and corrupt
// in-flight envelopes, kill the sender, and fire membership epoch bumps.
//
// Checked safety invariants (names appear in reports/counterexamples):
//   parked-above-expected   reassembly set holds only seqs > expected
//   tx-accounting           base_seq + buffered == next_seq + 1
//   gc-dropped-unacked      GC advanced past cum_ack + 1 (retransmit buffer
//                           lost a payload nobody acked)
//   ack-consistency         published cumulative ack != expected - 1
//   out-of-order-delivery   app saw seq <= a previously delivered seq
//                           (covers duplicate delivery)
//   stale-delivery          app saw a payload whose epoch < mailbox floor
//
// Liveness (under fairness: Send/Deliver/Recover eventually fire): from
// every reachable state the protocol can still reach "every sent seq
// resolved" — delivered, skipped stale, or rejected by the mailbox floor —
// unless the sender died (dead hosts' traffic is intentionally lost).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "comm/reliable_fsm.hpp"

namespace gtopk::analysis::protocheck {

struct ArqModelConfig {
    int max_msgs = 3;        // sends the application issues
    int dup_budget = 1;      // adversary duplications
    int corrupt_budget = 1;  // adversary corruptions
    bool allow_drop = true;  // adversary may drop in-flight envelopes
    bool allow_kill = false;     // adversary may kill the sender
    int max_epoch_bumps = 0;     // regroup events (--proto epoch sets >= 1)
};

class ArqModel {
public:
    /// An in-flight envelope as the adversary sees it.
    struct Flight {
        std::uint64_t seq = 0;
        int epoch = 0;
        bool corrupt = false;
        bool operator==(const Flight& o) const {
            return seq == o.seq && epoch == o.epoch && corrupt == o.corrupt;
        }
        bool operator<(const Flight& o) const {
            if (seq != o.seq) return seq < o.seq;
            if (epoch != o.epoch) return epoch < o.epoch;
            return corrupt < o.corrupt;
        }
    };

    struct Action {
        enum class Kind : std::uint8_t {
            kSend,        // application sends the next payload
            kDeliver,     // fabric delivers an in-flight envelope (any order)
            kDrop,        // adversary drops an in-flight envelope
            kDup,         // adversary duplicates an in-flight envelope
            kCorrupt,     // adversary flips bits in an in-flight envelope
            kRecover,     // receiver pulls the gap head from the tx buffer
            kKillSender,  // fault plan kills rank 0
            kEpochBump,   // regroup: epoch floor and send stamp advance
        };
        Kind kind = Kind::kSend;
        Flight flight{};  // operand for kDeliver/kDrop/kDup/kCorrupt
    };

    /// Per-seq application-visible outcome.
    enum class SeqFate : std::uint8_t {
        kPending = 0,
        kDelivered,  // app received the payload
        kSkipped,    // stale-epoch gap skip (recover) or begin_epoch purge
        kRejected,   // delivered to the mailbox, rejected by the epoch floor
    };

    /// Observable event counters, the model-side mirror of ReliableCounts.
    /// Deliberately EXCLUDED from encode(): they are derived observations,
    /// not protocol state, and folding them into the visited key would
    /// split equivalent states. The replay bridge compares them against
    /// the real transport's counters after walking the same trace.
    struct Counts {
        std::uint64_t retransmits = 0;
        std::uint64_t corrupt_dropped = 0;
        std::uint64_t dup_dropped = 0;
        std::uint64_t stale_skipped = 0;
        bool operator==(const Counts& o) const {
            return retransmits == o.retransmits &&
                   corrupt_dropped == o.corrupt_dropped &&
                   dup_dropped == o.dup_dropped &&
                   stale_skipped == o.stale_skipped;
        }
    };

    struct State {
        comm::fsm::ArqTxState tx;
        std::vector<int> buffer_epochs;  // epochs of tx buffer entries
        comm::fsm::ArqRxState rx;
        std::map<std::uint64_t, int> parked_epochs;  // mirrors rx.parked
        std::vector<Flight> flight;                  // kept sorted (canonical)
        std::uint64_t shared_ack = 0;  // receiver-published cumulative ack
        int sent = 0;
        int dups_used = 0;
        int corrupts_used = 0;
        int bumps_used = 0;
        bool sender_alive = true;
        int send_epoch = 0;  // stamp on new sends
        int rx_floor = 0;    // mailbox min_epoch
        std::vector<SeqFate> fate;     // index seq-1, size max_msgs
        std::uint64_t last_app_seq = 0;  // highest seq the app accepted
        Counts counts;  // excluded from encode(), see Counts
        /// Set at transition time when an event-invariant breaks (ordering,
        /// staleness); check() surfaces it.
        std::string violation;
    };

    explicit ArqModel(ArqModelConfig cfg) : cfg_(cfg) {}

    State initial() const;
    std::vector<Action> actions(const State& s) const;
    State apply(const State& s, const Action& a) const;
    std::string describe(const Action& a) const;
    std::optional<std::string> check(const State& s) const;
    bool is_goal(const State& s) const;
    bool is_fair(const Action& a) const;
    std::vector<std::uint64_t> encode(const State& s) const;

    const ArqModelConfig& config() const { return cfg_; }

private:
    /// Push one FSM-delivered payload at the app boundary: mailbox epoch
    /// floor, ordering and exactly-once bookkeeping.
    static void app_push(State& s, std::uint64_t seq, int epoch);
    /// Release `n` leading parked payloads (after an expected advance).
    static void release_parked(State& s, std::uint64_t n);

    ArqModelConfig cfg_;
};

}  // namespace gtopk::analysis::protocheck
