#include "analysis/protocheck/membership_model.hpp"

#include <algorithm>

namespace gtopk::analysis::protocheck {

namespace fsm = comm::fsm;

MembershipModel::State MembershipModel::initial() const {
    State s;
    s.fsm = fsm::membership_init(cfg_.world);
    const std::size_t w = static_cast<std::size_t>(cfg_.world);
    s.fabric_alive.assign(w, true);
    s.waiting.assign(w, false);
    s.grace_expired.assign(w, false);
    s.my_round.assign(w, 0);
    s.joins_left.assign(w, cfg_.joins_per_rank);
    s.kills_left = cfg_.max_kills;
    return s;
}

std::vector<MembershipModel::Action> MembershipModel::actions(const State& s) const {
    std::vector<Action> out;
    if (!s.violation.empty()) return out;  // violating states are terminal
    for (int r = 0; r < cfg_.world; ++r) {
        const std::size_t ri = static_cast<std::size_t>(r);
        if (s.waiting[ri]) {
            if (s.my_round[ri] != s.fsm.round) {
                out.push_back({Action::Kind::kWake, r});
            } else {
                if (fsm::membership_evaluate(s.fsm, s.fabric_alive,
                                             s.grace_expired[ri]) !=
                    fsm::RoundVerdict::kWait) {
                    out.push_back({Action::Kind::kEvaluate, r});
                }
                if (!s.grace_expired[ri]) {
                    out.push_back({Action::Kind::kGraceExpire, r});
                }
            }
        } else if (s.joins_left[ri] > 0) {
            // Enumerate the join only when it would actually be admitted
            // (a refused join raises in the service and changes nothing).
            fsm::MembershipFsmState probe = s.fsm;
            if (fsm::membership_join(probe, r, s.fabric_alive) ==
                fsm::JoinVerdict::kJoined) {
                out.push_back({Action::Kind::kJoin, r});
            }
        }
        if (s.kills_left > 0 && s.fabric_alive[ri]) {
            out.push_back({Action::Kind::kKill, r});
        }
        if (!s.fabric_alive[ri] && !s.fsm.left[ri]) {
            out.push_back({Action::Kind::kLeave, r});
        }
    }
    return out;
}

MembershipModel::State MembershipModel::apply(const State& prev,
                                              const Action& a) const {
    State s = prev;
    const std::size_t ri = static_cast<std::size_t>(a.rank);
    switch (a.kind) {
        case Action::Kind::kJoin:
            fsm::membership_join(s.fsm, a.rank, s.fabric_alive);
            s.waiting[ri] = true;
            s.grace_expired[ri] = false;
            s.my_round[ri] = s.fsm.round;
            --s.joins_left[ri];
            break;
        case Action::Kind::kWake:
            s.waiting[ri] = false;
            break;
        case Action::Kind::kGraceExpire:
            s.grace_expired[ri] = true;
            break;
        case Action::Kind::kEvaluate: {
            const fsm::RoundVerdict v = fsm::membership_evaluate(
                s.fsm, s.fabric_alive, s.grace_expired[ri]);
            if (v == fsm::RoundVerdict::kWait) break;  // disabled; defensive
            s.waiting[ri] = false;
            if (v == fsm::RoundVerdict::kAbortNoQuorum) break;  // throws upstream
            // Spec-side quorum check, computed independently of the FSM's
            // own verdict: a finalization is legitimate only when every
            // live member joined or a strict majority of them did.
            const std::vector<int> live =
                fsm::membership_live_members(s.fsm, s.fabric_alive);
            const std::size_t joined_live = static_cast<std::size_t>(
                std::count_if(live.begin(), live.end(), [&](int r) {
                    return s.fsm.joined[static_cast<std::size_t>(r)];
                }));
            if (joined_live < live.size() && joined_live * 2 <= live.size()) {
                s.violation = "quorum-violation";
            }
            const std::vector<int> prev_members = s.fsm.members;
            const int prev_epoch = s.fsm.epoch;
            const comm::MembershipView view = fsm::membership_finalize(s.fsm);
            if (s.violation.empty() && view.epoch != prev_epoch + 1) {
                s.violation = "epoch-skip";
            }
            if (s.violation.empty()) {
                for (const int m : view.members) {
                    if (std::find(prev_members.begin(), prev_members.end(), m) ==
                        prev_members.end()) {
                        s.violation = "member-resurrection";
                        break;
                    }
                }
            }
            if (s.violation.empty()) {
                for (const auto& f : s.finalized) {
                    if (f.epoch == view.epoch && f.members != view.members) {
                        s.violation = "split-brain";
                        break;
                    }
                }
            }
            s.finalized.push_back(view);
            break;
        }
        case Action::Kind::kKill:
            s.fabric_alive[ri] = false;
            --s.kills_left;
            break;
        case Action::Kind::kLeave:
            fsm::membership_leave(s.fsm, a.rank);
            break;
    }
    return s;
}

std::string MembershipModel::describe(const Action& a) const {
    const std::string r = std::to_string(a.rank);
    switch (a.kind) {
        case Action::Kind::kJoin: return "join(" + r + ")";
        case Action::Kind::kEvaluate: return "evaluate(" + r + ")";
        case Action::Kind::kWake: return "wake(" + r + ")";
        case Action::Kind::kGraceExpire: return "grace-expire(" + r + ")";
        case Action::Kind::kKill: return "kill(" + r + ")";
        case Action::Kind::kLeave: return "leave(" + r + ")";
    }
    return "?";
}

std::optional<std::string> MembershipModel::check(const State& s) const {
    if (!s.violation.empty()) return s.violation;
    return std::nullopt;
}

bool MembershipModel::is_goal(const State& s) const {
    return std::none_of(s.waiting.begin(), s.waiting.end(),
                        [](bool w) { return w; });
}

bool MembershipModel::is_fair(const Action& a) const {
    switch (a.kind) {
        case Action::Kind::kEvaluate:
        case Action::Kind::kWake:
        case Action::Kind::kGraceExpire:
            return true;
        default:
            return false;
    }
}

std::vector<std::uint64_t> MembershipModel::encode_permuted(
    const State& s, const std::vector<int>& perm) const {
    // perm[i] = the ORIGINAL rank relabeled as rank i.
    std::vector<std::uint64_t> e;
    e.reserve(static_cast<std::size_t>(cfg_.world) + 6 + s.finalized.size());
    e.push_back(static_cast<std::uint64_t>(s.fsm.epoch));
    e.push_back(s.fsm.round);
    std::uint64_t members_mask = 0;
    for (const int m : s.fsm.members) {
        for (int i = 0; i < cfg_.world; ++i) {
            if (perm[static_cast<std::size_t>(i)] == m) members_mask |= 1ULL << i;
        }
    }
    e.push_back(members_mask);
    for (int i = 0; i < cfg_.world; ++i) {
        const std::size_t oi = static_cast<std::size_t>(perm[static_cast<std::size_t>(i)]);
        std::uint64_t bits = 0;
        bits |= s.fabric_alive[oi] ? 1u : 0u;
        bits |= s.fsm.left[oi] ? 2u : 0u;
        bits |= s.fsm.joined[oi] ? 4u : 0u;
        bits |= s.waiting[oi] ? 8u : 0u;
        bits |= s.grace_expired[oi] ? 16u : 0u;
        bits |= static_cast<std::uint64_t>(s.joins_left[oi]) << 8;
        bits |= (s.waiting[oi] ? s.my_round[oi] : 0) << 16;
        e.push_back(bits);
    }
    e.push_back(static_cast<std::uint64_t>(s.kills_left));
    e.push_back(0xffff'0004ULL);
    for (const auto& f : s.finalized) {
        std::uint64_t mask = 0;
        for (const int m : f.members) {
            for (int i = 0; i < cfg_.world; ++i) {
                if (perm[static_cast<std::size_t>(i)] == m) mask |= 1ULL << i;
            }
        }
        e.push_back((static_cast<std::uint64_t>(f.epoch) << 8) | mask);
    }
    return e;
}

std::vector<std::uint64_t> MembershipModel::encode(const State& s) const {
    std::vector<int> perm(static_cast<std::size_t>(cfg_.world));
    for (int i = 0; i < cfg_.world; ++i) perm[static_cast<std::size_t>(i)] = i;
    if (!cfg_.symmetry_reduction) return encode_permuted(s, perm);
    std::vector<std::uint64_t> best = encode_permuted(s, perm);
    while (std::next_permutation(perm.begin(), perm.end())) {
        std::vector<std::uint64_t> cand = encode_permuted(s, perm);
        if (cand < best) best = std::move(cand);
    }
    return best;
}

}  // namespace gtopk::analysis::protocheck
