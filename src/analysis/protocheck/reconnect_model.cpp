#include "analysis/protocheck/reconnect_model.hpp"

#include <algorithm>

namespace gtopk::analysis::protocheck {

namespace fsm = gtopk::comm::fsm;

comm::fsm::ReconnectPolicy ReconnectModel::policy() const {
    fsm::ReconnectPolicy p;
    p.max_attempts = cfg_.max_attempts;
    return p;
}

ReconnectModel::State ReconnectModel::initial() const {
    State s;  // both endpoints kUp on session 1 — bootstrap succeeded
    s.losses_left = cfg_.max_losses;
    return s;
}

namespace {

bool quiescent(const ReconnectModel::State& s) {
    return s.resumes.empty() && s.oks.empty() && !s.pend_down_dialer &&
           !s.pend_down_acceptor;
}

std::vector<std::uint64_t> distinct(const std::vector<std::uint64_t>& v) {
    std::vector<std::uint64_t> out = v;
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

void erase_one(std::vector<std::uint64_t>& v, std::uint64_t value) {
    const auto it = std::find(v.begin(), v.end(), value);
    if (it != v.end()) v.erase(it);
}

}  // namespace

std::vector<ReconnectModel::Action> ReconnectModel::actions(const State& s) const {
    using K = Action::Kind;
    std::vector<Action> out;
    if (s.dialer.phase == fsm::LinkPhase::kUp &&
        s.acceptor.phase == fsm::LinkPhase::kUp && s.losses_left > 0 &&
        !s.pend_down_dialer && !s.pend_down_acceptor) {
        out.push_back({K::kConnLoss, 0});
    }
    if (s.pend_down_dialer) out.push_back({K::kDetectDialer, 0});
    if (s.pend_down_acceptor) out.push_back({K::kDetectAcceptor, 0});
    if (s.dialer.phase == fsm::LinkPhase::kDown) {
        out.push_back({K::kDial, 0});
        out.push_back({K::kExpireDialer, 0});
    }
    if (s.acceptor.phase == fsm::LinkPhase::kDown) {
        out.push_back({K::kExpireAcceptor, 0});
    }
    for (const std::uint64_t r : distinct(s.resumes)) {
        out.push_back({K::kDeliverResume, r});
        out.push_back({K::kDropResume, r});
    }
    for (const std::uint64_t v : distinct(s.oks)) {
        out.push_back({K::kDeliverOk, v});
        out.push_back({K::kDropOk, v});
    }
    return out;
}

ReconnectModel::State ReconnectModel::apply(const State& s, const Action& a) const {
    using K = Action::Kind;
    State n = s;
    switch (a.kind) {
        case K::kConnLoss:
            --n.losses_left;
            n.pend_down_dialer = true;
            n.pend_down_acceptor = true;
            break;
        case K::kDetectDialer:
            n.pend_down_dialer = false;
            (void)fsm::link_down(n.dialer);
            n.cur_proposal = 0;  // no outstanding dial in the new incarnation
            break;
        case K::kDetectAcceptor:
            n.pend_down_acceptor = false;
            (void)fsm::link_down(n.acceptor);
            break;
        case K::kDial: {
            switch (fsm::link_dial(n.dialer, policy())) {
                case fsm::DialVerdict::kDial:
                    n.cur_proposal = fsm::link_propose(n.dialer);
                    n.resumes.push_back(n.cur_proposal);
                    // Dialing again abandons the previous connection; any
                    // RESUME_OK still riding it dies with the socket.
                    n.oks.clear();
                    break;
                case fsm::DialVerdict::kDead:
                    // Giving up closes every socket the dialer holds: a
                    // RESUME_OK buffered in one is never read, and an
                    // acceptor that installed one of those sockets will
                    // observe the loss.
                    n.cur_proposal = 0;
                    n.oks.clear();
                    if (n.acceptor.phase == fsm::LinkPhase::kUp) {
                        n.pend_down_acceptor = true;
                    }
                    break;
            }
            break;
        }
        case K::kDeliverResume: {
            erase_one(n.resumes, a.value);
            const std::uint64_t prev_session = n.acceptor.session;
            const bool prev_dead = n.acceptor.phase == fsm::LinkPhase::kDead;
            const bool acceptor_held_conn =
                n.acceptor.phase == fsm::LinkPhase::kUp;
            const fsm::ResumeVerdict v = fsm::link_resume(n.acceptor, a.value);
            if (prev_dead && n.acceptor.phase != fsm::LinkPhase::kDead) {
                n.violation = "dead-resurrected";
                break;
            }
            if (v != fsm::ResumeVerdict::kAccept) break;  // connection closed
            // THE spec check, independent of the FSM's own guard: an
            // accepted proposal must strictly advance the session, or a
            // delayed dial resurrected an abandoned incarnation.
            if (a.value <= prev_session) {
                n.violation = "stale-session-accepted";
                break;
            }
            // Installing the accepted connection retires whatever the
            // acceptor held before; a dialer still holding that old
            // connection observes the loss.
            if (acceptor_held_conn &&
                s.dialer.phase == fsm::LinkPhase::kUp) {
                n.pend_down_dialer = true;
            }
            if (s.dialer.phase == fsm::LinkPhase::kDown &&
                a.value == s.cur_proposal) {
                // Viable: the dialer still holds this socket — the
                // RESUME_OK can reach it.
                n.oks.push_back(a.value);
            } else {
                // Backlog dial the dialer already abandoned: the acceptor
                // just installed a dead connection and will notice.
                n.pend_down_acceptor = true;
            }
            break;
        }
        case K::kDropResume:
            erase_one(n.resumes, a.value);
            break;
        case K::kDeliverOk: {
            erase_one(n.oks, a.value);
            const bool prev_dead = n.dialer.phase == fsm::LinkPhase::kDead;
            if (n.dialer.phase == fsm::LinkPhase::kDown) {
                fsm::link_established(n.dialer, a.value);
                n.cur_proposal = 0;
                // TCP delivers buffered data before EOF: the confirm can
                // arrive from an acceptor that has since died, but the EOF
                // right behind it downs the link again.
                if (n.acceptor.phase == fsm::LinkPhase::kDead) {
                    n.pend_down_dialer = true;
                }
            }
            if (prev_dead && n.dialer.phase != fsm::LinkPhase::kDead) {
                n.violation = "dead-resurrected";
            }
            break;
        }
        case K::kDropOk:
            erase_one(n.oks, a.value);
            break;
        case K::kExpireDialer:
            // Death closes the dialer's sockets: buffered RESUME_OKs are
            // never read, and an acceptor up on one of those sockets
            // observes the loss. (RESUMEs already buffered on the
            // acceptor's side survive — TCP delivers them before the EOF.)
            (void)fsm::link_expire(n.dialer);
            n.cur_proposal = 0;
            n.oks.clear();
            if (n.acceptor.phase == fsm::LinkPhase::kUp) {
                n.pend_down_acceptor = true;
            }
            break;
        case K::kExpireAcceptor:
            (void)fsm::link_expire(n.acceptor);
            if (n.dialer.phase == fsm::LinkPhase::kUp) {
                n.pend_down_dialer = true;
            }
            break;
    }
    return n;
}

std::string ReconnectModel::describe(const Action& a) const {
    using K = Action::Kind;
    switch (a.kind) {
        case K::kConnLoss: return "conn-loss";
        case K::kDetectDialer: return "detect(dialer)";
        case K::kDetectAcceptor: return "detect(acceptor)";
        case K::kDial: return "dial";
        case K::kDeliverResume:
            return "deliver RESUME(session=" + std::to_string(a.value) + ")";
        case K::kDropResume:
            return "drop RESUME(session=" + std::to_string(a.value) + ")";
        case K::kDeliverOk:
            return "deliver RESUME_OK(session=" + std::to_string(a.value) + ")";
        case K::kDropOk:
            return "drop RESUME_OK(session=" + std::to_string(a.value) + ")";
        case K::kExpireDialer: return "expire(dialer)";
        case K::kExpireAcceptor: return "expire(acceptor)";
    }
    return "?";
}

std::optional<std::string> ReconnectModel::check(const State& s) const {
    if (!s.violation.empty()) return s.violation;
    if (s.dialer.attempts > cfg_.max_attempts) return "attempts-unbounded";
    if (quiescent(s) && s.dialer.phase == fsm::LinkPhase::kUp &&
        s.acceptor.phase == fsm::LinkPhase::kUp &&
        s.dialer.session != s.acceptor.session) {
        return "session-divergence";
    }
    return std::nullopt;
}

bool ReconnectModel::is_goal(const State& s) const {
    if (!quiescent(s)) return false;
    const bool both_up = s.dialer.phase == fsm::LinkPhase::kUp &&
                         s.acceptor.phase == fsm::LinkPhase::kUp &&
                         s.dialer.session == s.acceptor.session;
    const bool both_dead = s.dialer.phase == fsm::LinkPhase::kDead &&
                           s.acceptor.phase == fsm::LinkPhase::kDead;
    return both_up || both_dead;
}

bool ReconnectModel::is_fair(const Action& a) const {
    using K = Action::Kind;
    switch (a.kind) {
        case K::kDetectDialer:
        case K::kDetectAcceptor:
        case K::kDial:
        case K::kDeliverResume:
        case K::kDeliverOk:
        case K::kExpireAcceptor:
            // The runtime guarantees these eventually fire: the fabric
            // reports a broken connection, the backoff timer expires, a
            // frame sitting in a healthy socket is read, the passive
            // patience clock runs out.
            return true;
        case K::kConnLoss:
        case K::kDropResume:
        case K::kDropOk:
        case K::kExpireDialer:
            // Adversary moves (the dialer's host-time cap is a choice too:
            // liveness must not depend on it firing).
            return false;
    }
    return false;
}

std::vector<std::uint64_t> ReconnectModel::encode(const State& s) const {
    std::vector<std::uint64_t> e;
    e.push_back(static_cast<std::uint64_t>(s.dialer.phase));
    e.push_back(s.dialer.attempts);
    e.push_back(s.dialer.session);
    e.push_back(static_cast<std::uint64_t>(s.acceptor.phase));
    e.push_back(s.acceptor.attempts);
    e.push_back(s.acceptor.session);
    e.push_back((s.pend_down_dialer ? 1u : 0u) |
                (s.pend_down_acceptor ? 2u : 0u));
    e.push_back(s.cur_proposal);
    e.push_back(static_cast<std::uint64_t>(s.losses_left));
    std::vector<std::uint64_t> r = s.resumes;
    std::sort(r.begin(), r.end());
    e.push_back(r.size());
    e.insert(e.end(), r.begin(), r.end());
    std::vector<std::uint64_t> o = s.oks;
    std::sort(o.begin(), o.end());
    e.push_back(o.size());
    e.insert(e.end(), o.begin(), o.end());
    e.push_back(s.violation.empty() ? 0u : 1u);
    return e;
}

}  // namespace gtopk::analysis::protocheck
