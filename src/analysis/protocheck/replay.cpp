#include "analysis/protocheck/replay.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "comm/fault_transport.hpp"
#include "comm/membership.hpp"
#include "comm/reliable_transport.hpp"
#include "comm/tags.hpp"
#include "util/rng.hpp"

namespace gtopk::analysis::protocheck {

namespace {

constexpr int kAppTag = 7;  // arbitrary user tag for replay payloads
constexpr std::size_t kEnvelopeHeaderBytes = 32;  // matches reliable layer

/// A fully scripted world-2 fabric: every envelope ReliableTransport sends
/// is STAGED invisible to the receiver until the trace releases, drops,
/// duplicates or corrupts it — the trace IS the network schedule.
class ScriptedTransport final : public comm::Transport {
public:
    explicit ScriptedTransport(int world)
        : alive_(static_cast<std::size_t>(world), true),
          staged_(static_cast<std::size_t>(world)),
          ready_(static_cast<std::size_t>(world)) {}

    int world_size() const override { return static_cast<int>(staged_.size()); }

    void deliver(int dst, comm::Message msg) override {
        staged_[static_cast<std::size_t>(dst)].push_back(
            {std::move(msg), /*corrupt=*/false});
    }

    comm::Message receive(int, int, int) override {
        throw std::logic_error("ScriptedTransport: blocking receive unused");
    }

    std::optional<comm::Message> try_receive(int rank, int source,
                                             int tag) override {
        auto& q = ready_[static_cast<std::size_t>(rank)];
        for (auto it = q.begin(); it != q.end(); ++it) {
            if ((source == comm::kAnySource || it->source == source) &&
                (tag == comm::kAnyTag || it->tag == tag)) {
                comm::Message m = std::move(*it);
                q.erase(it);
                return m;
            }
        }
        return std::nullopt;
    }

    void shutdown() override {}
    bool rank_alive(int rank) const override {
        return alive_[static_cast<std::size_t>(rank)];
    }

    // --- trace controls ----------------------------------------------------

    /// Envelope seq lives at bytes [8,16) of the reliable wire format.
    static std::uint64_t staged_seq(const comm::Message& m) {
        std::uint64_t v = 0;
        if (m.payload.size() >= 16) std::memcpy(&v, m.payload.data() + 8, 8);
        return v;
    }

    bool release(int dst, std::uint64_t seq, int epoch, bool corrupt) {
        auto* e = find(dst, seq, epoch, corrupt);
        if (!e) return false;
        ready_[static_cast<std::size_t>(dst)].push_back(std::move(e->msg));
        erase(dst, e);
        return true;
    }

    bool drop(int dst, std::uint64_t seq, int epoch, bool corrupt) {
        auto* e = find(dst, seq, epoch, corrupt);
        if (!e) return false;
        erase(dst, e);
        return true;
    }

    bool duplicate(int dst, std::uint64_t seq, int epoch, bool corrupt) {
        auto* e = find(dst, seq, epoch, corrupt);
        if (!e) return false;
        staged_[static_cast<std::size_t>(dst)].push_back(*e);
        return true;
    }

    bool corrupt(int dst, std::uint64_t seq, int epoch) {
        auto* e = find(dst, seq, epoch, /*corrupt=*/false);
        if (!e || e->msg.payload.empty()) return false;
        e->msg.payload.back() ^= std::byte{0xff};  // checksum now fails
        e->corrupt = true;
        return true;
    }

    void kill(int rank) { alive_[static_cast<std::size_t>(rank)] = false; }

private:
    struct Staged {
        comm::Message msg;
        bool corrupt = false;
    };

    Staged* find(int dst, std::uint64_t seq, int epoch, bool corrupt) {
        for (auto& e : staged_[static_cast<std::size_t>(dst)]) {
            if (staged_seq(e.msg) == seq && e.msg.epoch == epoch &&
                e.corrupt == corrupt) {
                return &e;
            }
        }
        return nullptr;
    }

    void erase(int dst, Staged* e) {
        auto& v = staged_[static_cast<std::size_t>(dst)];
        v.erase(v.begin() + (e - v.data()));
    }

    std::vector<bool> alive_;
    std::vector<std::vector<Staged>> staged_;
    std::vector<std::vector<comm::Message>> ready_;
};

}  // namespace

ArqReplayResult replay_arq_trace(const ArqModelConfig& cfg,
                                 const std::vector<ArqModel::Action>& trace) {
    (void)cfg;
    auto scripted_owner = std::make_unique<ScriptedTransport>(2);
    ScriptedTransport* scripted = scripted_owner.get();
    comm::ReliableConfig rcfg;
    rcfg.initial_backoff_s = 1e9;  // recovery fires only via recover_now
    rcfg.max_backoff_s = 1e9;
    comm::ReliableTransport reliable(std::move(scripted_owner), rcfg);

    ArqReplayResult result;
    const auto drain = [&] {
        while (auto msg = reliable.try_receive(1, 0, kAppTag)) {
            std::uint64_t app_seq = 0;
            if (msg->payload.size() >= 8) {
                std::memcpy(&app_seq, msg->payload.data(), 8);
            }
            result.delivered.push_back(app_seq);
        }
    };

    std::uint64_t next_app_seq = 0;
    int send_epoch = 0;
    int floor = 0;
    using Kind = ArqModel::Action::Kind;
    for (const ArqModel::Action& a : trace) {
        const ArqModel::Flight& f = a.flight;
        switch (a.kind) {
            case Kind::kSend: {
                comm::Message m;
                m.source = 0;
                m.tag = kAppTag;
                m.epoch = send_epoch;
                m.payload.resize(8);
                ++next_app_seq;
                std::memcpy(m.payload.data(), &next_app_seq, 8);
                reliable.deliver(1, std::move(m));
                break;
            }
            case Kind::kDeliver:
                scripted->release(1, f.seq, f.epoch, f.corrupt);
                break;
            case Kind::kDrop:
                scripted->drop(1, f.seq, f.epoch, f.corrupt);
                break;
            case Kind::kDup:
                scripted->duplicate(1, f.seq, f.epoch, f.corrupt);
                break;
            case Kind::kCorrupt:
                scripted->corrupt(1, f.seq, f.epoch);
                break;
            case Kind::kRecover:
                reliable.recover_now(1);
                break;
            case Kind::kKillSender:
                scripted->kill(0);
                break;
            case Kind::kEpochBump:
                ++floor;
                send_epoch = floor;
                reliable.begin_epoch(1, floor);
                break;
        }
        drain();
    }
    drain();

    const comm::ReliableCounts c = reliable.counts();
    result.retransmits = c.retransmits;
    result.corrupt_dropped = c.corrupt_dropped;
    result.dup_dropped = c.dup_dropped;
    result.stale_skipped = c.stale_skipped;
    return result;
}

ArqModelOutcome simulate_arq_trace(const ArqModelConfig& cfg,
                                   const std::vector<ArqModel::Action>& trace) {
    const ArqModel model(cfg);
    ArqModel::State s = model.initial();
    for (const ArqModel::Action& a : trace) s = model.apply(s, a);
    ArqModelOutcome out;
    out.violation = s.violation;
    for (std::uint64_t seq = 1; seq <= s.fate.size(); ++seq) {
        if (s.fate[seq - 1] == ArqModel::SeqFate::kDelivered) {
            out.predicted.delivered.push_back(seq);
        }
    }
    out.predicted.retransmits = s.counts.retransmits;
    out.predicted.corrupt_dropped = s.counts.corrupt_dropped;
    out.predicted.dup_dropped = s.counts.dup_dropped;
    out.predicted.stale_skipped = s.counts.stale_skipped;
    return out;
}

namespace {

std::string seq_list(const std::vector<std::uint64_t>& v) {
    std::string out = "[";
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (i) out += ",";
        out += std::to_string(v[i]);
    }
    return out + "]";
}

}  // namespace

std::optional<std::string> arq_conformance_diff(
    const ArqModelConfig& cfg, const std::vector<ArqModel::Action>& trace) {
    const ArqModelOutcome model = simulate_arq_trace(cfg, trace);
    if (!model.violation.empty()) {
        return "model trace is violating (" + model.violation +
               "); conformance diff expects invariant-clean traces";
    }
    const ArqReplayResult real = replay_arq_trace(cfg, trace);
    if (real.delivered != model.predicted.delivered) {
        return "delivered sequence diverged: real " + seq_list(real.delivered) +
               " vs model " + seq_list(model.predicted.delivered);
    }
    const auto diff_count = [](const char* name, std::uint64_t r,
                               std::uint64_t m) -> std::optional<std::string> {
        if (r == m) return std::nullopt;
        return std::string(name) + " diverged: real " + std::to_string(r) +
               " vs model " + std::to_string(m);
    };
    if (auto d = diff_count("retransmits", real.retransmits,
                            model.predicted.retransmits)) {
        return d;
    }
    if (auto d = diff_count("corrupt_dropped", real.corrupt_dropped,
                            model.predicted.corrupt_dropped)) {
        return d;
    }
    if (auto d = diff_count("dup_dropped", real.dup_dropped,
                            model.predicted.dup_dropped)) {
        return d;
    }
    if (auto d = diff_count("stale_skipped", real.stale_skipped,
                            model.predicted.stale_skipped)) {
        return d;
    }
    return std::nullopt;
}

std::optional<std::string> arq_random_conformance(const ArqModelConfig& cfg,
                                                  int samples, int max_steps,
                                                  std::uint64_t seed) {
    const ArqModel model(cfg);
    util::Xoshiro256 rng(seed);
    for (int i = 0; i < samples; ++i) {
        ArqModel::State s = model.initial();
        std::vector<ArqModel::Action> trace;
        for (int step = 0; step < max_steps; ++step) {
            const std::vector<ArqModel::Action> acts = model.actions(s);
            if (acts.empty()) break;
            const std::size_t pick = static_cast<std::size_t>(
                rng.next_u64() % acts.size());
            trace.push_back(acts[pick]);
            s = model.apply(s, acts[pick]);
        }
        if (auto d = arq_conformance_diff(cfg, trace)) {
            return "sample " + std::to_string(i) + " (" +
                   std::to_string(trace.size()) + " steps): " + *d;
        }
    }
    return std::nullopt;
}

MembershipReplayResult replay_membership_trace(
    const MembershipModelConfig& cfg,
    const std::vector<MembershipModel::Action>& trace) {
    auto fault = std::make_unique<comm::FaultInjectingTransport>(cfg.world,
                                                                 comm::FaultPlan{});
    comm::FaultInjectingTransport& fabric = *fault;
    comm::MembershipConfig mcfg;
    // Generous grace: every trace action must land well inside the window
    // so the real outcome is a function of the trace, not the scheduler.
    mcfg.join_grace_s = 1.5;
    comm::MembershipService svc(fabric, mcfg);

    struct Joiner {
        std::thread thread;
        MembershipReplayOutcome outcome;
    };
    std::vector<std::unique_ptr<Joiner>> joiners;

    using Kind = MembershipModel::Action::Kind;
    for (const MembershipModel::Action& a : trace) {
        switch (a.kind) {
            case Kind::kJoin: {
                auto j = std::make_unique<Joiner>();
                j->outcome.rank = a.rank;
                Joiner* raw = j.get();
                const int rank = a.rank;
                raw->thread = std::thread([raw, rank, &svc] {
                    try {
                        raw->outcome.view = svc.regroup(rank);
                        raw->outcome.kind = MembershipReplayOutcome::Kind::kView;
                    } catch (const std::invalid_argument&) {
                        raw->outcome.kind = MembershipReplayOutcome::Kind::kRefused;
                    } catch (const std::runtime_error&) {
                        raw->outcome.kind = MembershipReplayOutcome::Kind::kAbort;
                    }
                });
                joiners.push_back(std::move(j));
                break;
            }
            case Kind::kKill:
                fabric.kill_rank(a.rank);
                break;
            case Kind::kLeave:
                svc.leave(a.rank);
                break;
            case Kind::kEvaluate:
            case Kind::kWake:
            case Kind::kGraceExpire:
                break;  // the service's own clockwork
        }
        // Pace actions so each lands before the next (join registration,
        // fast-path finalization) while staying far from the grace bound.
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }

    MembershipReplayResult result;
    for (auto& j : joiners) {
        j->thread.join();
        result.outcomes.push_back(j->outcome);
    }
    return result;
}

std::optional<std::string> membership_conformance_diff(
    const MembershipModelConfig& cfg,
    const std::vector<MembershipModel::Action>& trace) {
    // Model-side prediction: finalized views along the trace.
    const MembershipModel model(cfg);
    MembershipModel::State s = model.initial();
    for (const MembershipModel::Action& a : trace) s = model.apply(s, a);

    const MembershipReplayResult real = replay_membership_trace(cfg, trace);

    // Distinct real views in epoch order.
    std::vector<comm::MembershipView> real_views;
    for (const auto& o : real.outcomes) {
        if (o.kind != MembershipReplayOutcome::Kind::kView) continue;
        const bool seen = std::any_of(
            real_views.begin(), real_views.end(), [&](const auto& v) {
                return v.epoch == o.view.epoch && v.members == o.view.members;
            });
        if (!seen) real_views.push_back(o.view);
    }
    std::sort(real_views.begin(), real_views.end(),
              [](const auto& a, const auto& b) { return a.epoch < b.epoch; });

    // Every view the model finalized must be realized, in order (the real
    // service may finalize FURTHER rounds after the trace's horizon — its
    // grace clock keeps running — so prefix agreement is the contract).
    if (s.finalized.size() > real_views.size()) {
        return "model finalized " + std::to_string(s.finalized.size()) +
               " view(s), real service produced " +
               std::to_string(real_views.size());
    }
    for (std::size_t i = 0; i < s.finalized.size(); ++i) {
        if (s.finalized[i].epoch != real_views[i].epoch ||
            s.finalized[i].members != real_views[i].members) {
            return "finalized view " + std::to_string(i) +
                   " diverged (model epoch " +
                   std::to_string(s.finalized[i].epoch) + " vs real epoch " +
                   std::to_string(real_views[i].epoch) + ")";
        }
    }
    return std::nullopt;
}

}  // namespace gtopk::analysis::protocheck
