// Membership/epoch agreement model for protocheck: one MembershipService
// world of 2..4 ranks driven through the SAME fsm::membership_* transition
// functions the service executes, under an adversary that kills ranks at
// any point, chooses which ranks ever call regroup(), decides when each
// waiter's grace window expires, and interleaves everything.
//
// Checked safety invariants (evaluated independently of the FSM at every
// finalization — the spec the FSM must meet, not the FSM's own code path):
//   quorum-violation     a view finalized without every live member joined
//                        and without a strict majority of live members
//   split-brain          two finalized views share an epoch but disagree on
//                        members
//   epoch-skip           a finalized epoch is not previous + 1
//   member-resurrection  a finalized view contains a rank outside the
//                        previous view
//
// Liveness (fair: Evaluate, Wake, GraceExpire — time always passes and a
// waiter always re-checks): no rank waits forever; every regroup() call
// terminates by returning a view, aborting, or observing the round moved.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "comm/membership_fsm.hpp"

namespace gtopk::analysis::protocheck {

struct MembershipModelConfig {
    int world = 3;
    int max_kills = 1;      // adversary rank kills
    int joins_per_rank = 2;  // regroup() calls each rank may issue
    /// Canonicalize states up to rank permutation (lexicographic minimum
    /// over all world! relabelings). Sound because no rank is
    /// distinguished; cuts the reachable set roughly by world!.
    bool symmetry_reduction = true;
};

class MembershipModel {
public:
    struct Action {
        enum class Kind : std::uint8_t {
            kJoin,         // rank calls regroup(): joins the current round
            kEvaluate,     // a waiter re-checks the finalization rule
            kWake,         // a waiter of a finalized round observes it moved
            kGraceExpire,  // rank's grace window elapses
            kKill,         // fault plan kills the rank
            kLeave,        // a killed rank's thread observes it and leaves
        };
        Kind kind = Kind::kJoin;
        int rank = 0;
    };

    struct State {
        comm::fsm::MembershipFsmState fsm;
        std::vector<bool> fabric_alive;
        std::vector<bool> waiting;        // rank is blocked inside regroup()
        std::vector<bool> grace_expired;  // per-waiter grace clock
        std::vector<std::uint64_t> my_round;  // round joined (valid if waiting)
        std::vector<int> joins_left;
        int kills_left = 0;
        /// Every finalized view, in order, for the cross-round invariants.
        std::vector<comm::MembershipView> finalized;
        std::string violation;  // set at finalize time by the spec checks
    };

    explicit MembershipModel(MembershipModelConfig cfg) : cfg_(cfg) {}

    State initial() const;
    std::vector<Action> actions(const State& s) const;
    State apply(const State& s, const Action& a) const;
    std::string describe(const Action& a) const;
    std::optional<std::string> check(const State& s) const;
    bool is_goal(const State& s) const;
    bool is_fair(const Action& a) const;
    std::vector<std::uint64_t> encode(const State& s) const;

    const MembershipModelConfig& config() const { return cfg_; }

private:
    std::vector<std::uint64_t> encode_permuted(const State& s,
                                               const std::vector<int>& perm) const;

    MembershipModelConfig cfg_;
};

}  // namespace gtopk::analysis::protocheck
