// Closed-form message/byte counts for every protocol's schedule — the
// left-hand (count) side of the paper's Table I, next to cost_model.hpp's
// time side. commcheck compares each generated schedule's totals against
// these formulas for every world size, so a generator regression that
// changes traffic volume (not just shape) is caught statically.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace gtopk::analysis {

/// Expected totals across all ranks for one schedule instance. `bytes` is
/// nullopt when the protocol's payload sizes are data-dependent.
struct ExpectedTotals {
    std::int64_t messages = 0;
    std::optional<std::int64_t> bytes;
};

/// Closed-form totals for the protocol string `proto` (Schedule::proto) at
/// world size P with `elems` elements of `elem_bytes` each (the meaning of
/// `elems` is per-protocol: full vector for allreduce/broadcast/reduce,
/// per-rank contribution for allgather/gather, wire elements for gtopk).
/// Returns nullopt for protocols without a closed form (allgatherv with
/// unknown sizes still has a message count — bytes is nullopt inside).
std::optional<ExpectedTotals> expected_totals(const std::string& proto, int world,
                                              std::int64_t elems,
                                              std::int64_t elem_bytes);

}  // namespace gtopk::analysis
