#include "analysis/cost_rules.hpp"

#include "collectives/schedule.hpp"

namespace gtopk::analysis {

namespace {

using collectives::ilog2_ceil;
using collectives::ilog2_floor;
using collectives::kVariableBytes;

std::optional<std::int64_t> sized(std::int64_t count, std::int64_t elems,
                                  std::int64_t elem_bytes) {
    if (elems == kVariableBytes || elem_bytes == kVariableBytes) return std::nullopt;
    return count * elems * elem_bytes;
}

}  // namespace

std::optional<ExpectedTotals> expected_totals(const std::string& proto, int world,
                                              std::int64_t elems,
                                              std::int64_t elem_bytes) {
    const std::int64_t P = world;
    ExpectedTotals t;

    if (proto == "barrier") {
        // ceil(log2 P) rounds of one token per rank.
        t.messages = P == 1 ? 0 : P * ilog2_ceil(world);
        t.bytes = t.messages;  // 1-byte tokens
        return t;
    }
    if (proto == "broadcast.binomial" || proto == "broadcast.flat" ||
        proto == "reduce.binomial") {
        // A (reversed) tree moves each rank's payload exactly once.
        t.messages = P - 1;
        t.bytes = sized(P - 1, elems, elem_bytes);
        return t;
    }
    if (proto == "allreduce.ring") {
        // 2(P-1) steps; each step circulates every block exactly once, so
        // each pass moves the full m elements P-1 times — Eq. 5's
        // 2 (P-1)/P m beta per rank, exact for any m (uneven blocks too).
        t.messages = P == 1 ? 0 : 2 * P * (P - 1);
        t.bytes = P == 1 ? std::optional<std::int64_t>(0)
                         : sized(2 * (P - 1), elems, elem_bytes);
        return t;
    }
    if (proto == "allreduce.recursive_doubling") {
        // logP rounds of full-vector exchange on every rank.
        const std::int64_t rounds = P == 1 ? 0 : ilog2_floor(world);
        t.messages = P * rounds;
        t.bytes = sized(P * rounds, elems, elem_bytes);
        return t;
    }
    if (proto == "allreduce.rabenseifner") {
        // 2 logP rounds; halving windows sum to m(P-1)/P per rank per
        // phase — ring bandwidth at logarithmic latency (P | m enforced
        // by the generator).
        const std::int64_t rounds = P == 1 ? 0 : ilog2_floor(world);
        t.messages = 2 * P * rounds;
        t.bytes = P == 1 ? std::optional<std::int64_t>(0)
                         : sized(2 * (P - 1), elems, elem_bytes);
        return t;
    }
    if (proto == "allgather.recursive_doubling") {
        // Windows double each round: n(P-1) elements shipped per rank —
        // Eq. 6's (P-1) n beta.
        const std::int64_t rounds = P == 1 ? 0 : ilog2_floor(world);
        t.messages = P * rounds;
        t.bytes = sized(P * (P - 1), elems, elem_bytes);
        return t;
    }
    if (proto == "allgather.ring" || proto == "allgatherv.ring") {
        t.messages = P == 1 ? 0 : P * (P - 1);
        t.bytes = proto == "allgather.ring" && P > 1
                      ? sized(P * (P - 1), elems, elem_bytes)
                      : (P == 1 ? std::optional<std::int64_t>(0) : std::nullopt);
        return t;
    }
    if (proto == "gather.flat") {
        t.messages = P - 1;
        t.bytes = sized(P - 1, elems, elem_bytes);
        return t;
    }
    if (proto == "gtopk.merge") {
        // (P - base) fold sends plus (base - 1) tree sends: every rank's
        // selection is handed off exactly once on the way to rank 0.
        t.messages = P - 1;
        t.bytes = sized(P - 1, elems, elem_bytes);
        return t;
    }
    if (proto == "gtopk.allreduce") {
        // Merge to rank 0 (P-1 handoffs) plus the binomial broadcast of the
        // result (P-1 deliveries) — Algorithm 3 end to end.
        t.messages = 2 * (P - 1);
        t.bytes = sized(2 * (P - 1), elems, elem_bytes);
        return t;
    }
    if (proto == "telemetry.allgather") {
        // Ring allgather of one fixed-size stats block per rank: P-1 steps,
        // each rank ships one block per step.
        t.messages = P == 1 ? 0 : P * (P - 1);
        t.bytes = P == 1 ? std::optional<std::int64_t>(0)
                         : sized(P * (P - 1), elems, elem_bytes);
        return t;
    }
    if (proto == "ps.iteration") {
        // Every worker pushes once and is answered once.
        t.messages = 2 * (P - 1);
        t.bytes = sized(2 * (P - 1), elems, elem_bytes);
        return t;
    }
    return std::nullopt;
}

}  // namespace gtopk::analysis
