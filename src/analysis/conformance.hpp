// Runtime conformance: diff a live threaded run's recorded message stream
// (comm/recording_transport.hpp) against the statically generated schedule.
//
// The global interleaving of a threaded run is nondeterministic, but each
// (src, dst) edge's stream is exactly the sender's program order — so the
// predictor lays out expected per-edge streams (replaying the SPMD
// fresh-tag accounting to turn tag offsets into absolute tags), and the
// diff compares every edge element-wise: tags strictly, bytes when the
// schedule knows them exactly. The first divergence is reported with the
// protocol, round and edge position that produced the expectation.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "collectives/schedule.hpp"
#include "comm/recording_transport.hpp"

namespace gtopk::analysis {

/// One predicted delivery on an edge.
struct ExpectedMsg {
    int src = -1;
    int dst = -1;
    int tag = -1;                              // absolute
    std::int64_t bytes = collectives::kVariableBytes;  // exact or variable
    std::string proto;
    int round = 0;
};

/// Accumulates the schedules a run executes, in order, replaying the
/// Communicator's fresh-tag cursor so offsets become absolute tags.
class SchedulePredictor {
public:
    explicit SchedulePredictor(int world);

    /// Append one collective invocation (all SPMD ranks execute it).
    void add(const collectives::Schedule& sched);
    /// Append the same schedule `times` times (e.g. per-iteration loops).
    void add_n(const collectives::Schedule& sched, int times);

    /// Append one ASYNC collective handle (collectives/async.hpp): its tag
    /// block comes from the async-band cursor (fresh_async_tags replay)
    /// instead of the blocking fresh-tag cursor. Call in handle START
    /// order — the order every rank calls AsyncCollective::start() in.
    void add_async(const collectives::Schedule& sched);

    int world() const { return world_; }
    std::int64_t total_messages() const { return total_; }
    /// Value the ranks' fresh-tag cursor should hold after the run.
    int fresh_cursor() const { return fresh_cursor_; }
    /// Value the ranks' async-band cursor should hold after the run.
    int async_cursor() const { return async_cursor_; }
    const std::vector<ExpectedMsg>& edge(int src, int dst) const;

private:
    void add_with_base(const collectives::Schedule& sched, int base);

    int world_;
    int fresh_cursor_;
    int async_cursor_;
    std::int64_t total_ = 0;
    std::vector<std::vector<ExpectedMsg>> edges_;  // [src * world + dst]
};

struct ConformanceReport {
    bool ok = true;
    /// Readable first-divergence description; empty when ok.
    std::string divergence;
    std::int64_t expected_messages = 0;
    std::int64_t actual_messages = 0;
    std::int64_t matched_messages = 0;
};

/// How strictly the recorded stream's ordering is held to the schedule.
enum class ConformanceMode {
    /// Each (src, dst) edge must match the sender's program order exactly —
    /// the right discipline for blocking SPMD runs, where one thread issues
    /// every send on an edge in schedule order.
    kEdgeOrder,
    /// Overlapped runs: concurrent AsyncCollective handles interleave their
    /// sends on a shared edge host-nondeterministically, but each
    /// (src, dst, tag) stream is still deterministic (disjoint per-handle
    /// tag bands + per-handle program order). Both sides are compared after
    /// a stable sort by tag, which collapses the cross-handle interleaving
    /// while preserving within-tag order.
    kTagStream,
};

/// Compare the predictor's per-edge expectations with a recorded run.
/// `actual` is RecordingTransport::log() (any global order; per-edge order
/// is what matters).
ConformanceReport diff_conformance(const SchedulePredictor& predictor,
                                   std::span<const comm::RecordedMsg> actual,
                                   ConformanceMode mode = ConformanceMode::kEdgeOrder);

}  // namespace gtopk::analysis
