#include "analysis/verify.hpp"

#include <deque>
#include <map>
#include <tuple>

#include "comm/tags.hpp"

namespace gtopk::analysis {

namespace {

using collectives::CommOp;
using collectives::Schedule;
using collectives::kVariableBytes;

std::string op_str(const CommOp& op, int rank) {
    std::string s = op.kind == CommOp::Kind::Send ? "send" : "recv";
    s += " rank " + std::to_string(rank);
    s += (op.kind == CommOp::Kind::Send ? " -> " : " <- ") + std::to_string(op.peer);
    s += " tag+" + std::to_string(op.tag_offset);
    s += " round " + std::to_string(op.round);
    return s;
}

/// Checks that need no execution: shapes, peers, tag discipline, per-edge
/// tag uniqueness (FIFO-unambiguity).
void static_checks(const Schedule& sched, VerifyResult& out) {
    const int world = sched.world;
    if (world < 1) {
        out.violations.push_back({"well-formed", -1, "world < 1"});
        return;
    }
    if (static_cast<int>(sched.ranks.size()) != world) {
        out.violations.push_back(
            {"well-formed", -1,
             "rank program count " + std::to_string(sched.ranks.size()) +
                 " != world " + std::to_string(world)});
        return;
    }
    if (sched.tag_count < 0) {
        out.violations.push_back({"tag-range", -1, "negative tag_count"});
    }

    std::map<std::tuple<int, int, int>, int> edge_tag_sends;
    for (int rank = 0; rank < world; ++rank) {
        for (const CommOp& op : sched.rank_ops(rank)) {
            if (op.peer < 0 || op.peer >= world) {
                out.violations.push_back(
                    {"well-formed", rank, op_str(op, rank) + ": peer out of range"});
                continue;
            }
            if (op.peer == rank) {
                out.violations.push_back(
                    {"well-formed", rank, op_str(op, rank) + ": self-message"});
            }
            if (op.bytes < 0 && op.bytes != kVariableBytes) {
                out.violations.push_back(
                    {"well-formed", rank, op_str(op, rank) + ": negative bytes"});
            }
            if (op.b < op.a) {
                out.violations.push_back(
                    {"well-formed", rank, op_str(op, rank) + ": empty operand range"});
            }
            if (sched.absolute_tags) {
                // User-tag discipline: absolute tags must stay strictly
                // below the fresh-tag base (comm/tags.hpp) or they would
                // collide with fresh-block collectives.
                if (op.tag_offset < 0 || op.tag_offset >= comm::kFreshTagBase) {
                    out.violations.push_back(
                        {"tag-range", rank,
                         op_str(op, rank) + ": absolute tag " +
                             std::to_string(op.tag_offset) +
                             " outside [0, fresh base " +
                             std::to_string(comm::kFreshTagBase) + ")"});
                }
            } else if (op.tag_offset < 0 || op.tag_offset >= sched.tag_count) {
                out.violations.push_back(
                    {"tag-range", rank,
                     op_str(op, rank) + ": tag offset outside the reserved block [0, " +
                         std::to_string(sched.tag_count) + ")"});
            }
            if (op.kind == CommOp::Kind::Send) {
                const int n = ++edge_tag_sends[{rank, op.peer, op.tag_offset}];
                if (n == 2) {
                    out.violations.push_back(
                        {"fifo", rank,
                         "tag " + std::to_string(op.tag_offset) + " sent twice on edge " +
                             std::to_string(rank) + " -> " + std::to_string(op.peer) +
                             "; matching would depend on FIFO arrival order"});
                }
            }
        }
    }
}

/// Execute the schedule under Mailbox semantics: sends are eager and
/// buffered, recvs block until a matching (source, tag) message is in
/// flight. Detects deadlock (wait-for cycle), unmatched recvs and
/// unconsumed sends, and prices the alpha-beta clock as it goes.
void simulate(const Schedule& sched, const comm::NetworkModel* net,
              VerifyResult& out) {
    const int world = sched.world;
    struct InFlight {
        std::int64_t bytes;
        double arrival_s;
    };
    std::map<std::tuple<int, int, int>, std::deque<InFlight>> wire;  // (src,dst,tag)
    std::vector<std::size_t> pc(static_cast<std::size_t>(world), 0);
    std::vector<double> clock(static_cast<std::size_t>(world), 0.0);
    bool time_exact = out.bytes_exact && net != nullptr;

    bool progress = true;
    while (progress) {
        progress = false;
        for (int rank = 0; rank < world; ++rank) {
            const auto& ops = sched.rank_ops(rank);
            auto& i = pc[static_cast<std::size_t>(rank)];
            while (i < ops.size()) {
                const CommOp& op = ops[i];
                if (op.kind == CommOp::Kind::Send) {
                    double arrival = 0.0;
                    if (time_exact) {
                        clock[static_cast<std::size_t>(rank)] +=
                            net->transfer_time_s(static_cast<std::uint64_t>(op.bytes));
                        arrival = clock[static_cast<std::size_t>(rank)];
                    }
                    wire[{rank, op.peer, op.tag_offset}].push_back({op.bytes, arrival});
                    ++i;
                    progress = true;
                    continue;
                }
                auto it = wire.find({op.peer, rank, op.tag_offset});
                if (it == wire.end() || it->second.empty()) break;  // blocked
                const InFlight msg = it->second.front();
                it->second.pop_front();
                if (time_exact) {
                    auto& c = clock[static_cast<std::size_t>(rank)];
                    c = std::max(c, msg.arrival_s);
                }
                ++i;
                progress = true;
            }
        }
    }

    // Stalled ranks: each blocked rank waits on exactly one (peer, tag).
    // If the peer's remaining program still sends it, the wait is real
    // (potential cycle); otherwise the recv can never be satisfied.
    std::vector<int> waits_on(static_cast<std::size_t>(world), -1);
    bool any_blocked = false;
    for (int rank = 0; rank < world; ++rank) {
        const auto& ops = sched.rank_ops(rank);
        const std::size_t i = pc[static_cast<std::size_t>(rank)];
        if (i >= ops.size()) continue;
        any_blocked = true;
        const CommOp& op = ops[i];
        bool peer_will_send = false;
        const auto& peer_ops = sched.rank_ops(op.peer);
        for (std::size_t j = pc[static_cast<std::size_t>(op.peer)];
             j < peer_ops.size(); ++j) {
            const CommOp& p = peer_ops[j];
            if (p.kind == CommOp::Kind::Send && p.peer == rank &&
                p.tag_offset == op.tag_offset) {
                peer_will_send = true;
                break;
            }
        }
        if (peer_will_send) {
            waits_on[static_cast<std::size_t>(rank)] = op.peer;
        } else {
            out.violations.push_back(
                {"match", rank,
                 op_str(op, rank) + ": no matching send exists anywhere in the "
                                    "schedule — recv can never complete"});
        }
    }
    if (any_blocked) {
        // Walk the wait-for edges to name a cycle if one exists.
        std::vector<int> color(static_cast<std::size_t>(world), 0);
        for (int start = 0; start < world; ++start) {
            if (waits_on[static_cast<std::size_t>(start)] < 0) continue;
            int r = start;
            std::vector<int> path;
            while (r >= 0 && color[static_cast<std::size_t>(r)] == 0) {
                color[static_cast<std::size_t>(r)] = 1;
                path.push_back(r);
                r = waits_on[static_cast<std::size_t>(r)];
            }
            if (r >= 0 && color[static_cast<std::size_t>(r)] == 1) {
                std::string cycle;
                bool in_cycle = false;
                for (int node : path) {
                    if (node == r) in_cycle = true;
                    if (in_cycle) cycle += std::to_string(node) + " -> ";
                }
                cycle += std::to_string(r);
                out.violations.push_back(
                    {"deadlock", r, "wait-for cycle: " + cycle});
            }
            for (int node : path) color[static_cast<std::size_t>(node)] = 2;
        }
        if (out.violations.empty()) {
            out.violations.push_back(
                {"deadlock", -1, "schedule stalled without completing"});
        }
        return;
    }

    // Everything ran to completion; any message still on the wire was sent
    // but never received.
    for (const auto& [key, queue] : wire) {
        if (queue.empty()) continue;
        const auto& [src, dst, tag] = key;
        out.violations.push_back(
            {"match", src,
             std::to_string(queue.size()) + " unconsumed send(s) on edge " +
                 std::to_string(src) + " -> " + std::to_string(dst) + " tag+" +
                 std::to_string(tag)});
    }

    if (time_exact && out.violations.empty()) {
        double cp = 0.0;
        for (double c : clock) cp = std::max(cp, c);
        out.critical_path_s = cp;
    }
}

}  // namespace

std::vector<Violation> verify_survivor_confinement(
    const Schedule& sched, std::span<const int> survivors) {
    std::vector<Violation> out;
    std::vector<bool> live(static_cast<std::size_t>(sched.world), false);
    for (std::size_t i = 0; i < survivors.size(); ++i) {
        if (survivors[i] < 0 || survivors[i] >= sched.world) {
            out.push_back({"confinement", -1,
                           "survivor " + std::to_string(survivors[i]) +
                               " outside world " + std::to_string(sched.world)});
            return out;
        }
        if (i > 0 && survivors[i] <= survivors[i - 1]) {
            out.push_back({"confinement", -1, "survivors not sorted unique"});
            return out;
        }
        live[static_cast<std::size_t>(survivors[i])] = true;
    }
    for (int rank = 0; rank < sched.world; ++rank) {
        const auto& ops = sched.rank_ops(rank);
        if (!live[static_cast<std::size_t>(rank)]) {
            if (!ops.empty()) {
                out.push_back({"confinement", rank,
                               "dead rank " + std::to_string(rank) + " has " +
                                   std::to_string(ops.size()) +
                                   " op(s) in its program"});
            }
            continue;
        }
        for (const CommOp& op : ops) {
            if (op.peer >= 0 && op.peer < sched.world &&
                !live[static_cast<std::size_t>(op.peer)]) {
                out.push_back({"confinement", rank,
                               op_str(op, rank) + ": peer " +
                                   std::to_string(op.peer) +
                                   " is not a survivor"});
            }
        }
    }
    return out;
}

VerifyResult verify_concurrent_schedules(std::span<const Schedule> parts,
                                         std::span<const int> tag_bases,
                                         const comm::NetworkModel* net) {
    VerifyResult out;
    if (parts.size() != tag_bases.size()) {
        out.violations.push_back(
            {"well-formed", -1,
             "parts (" + std::to_string(parts.size()) + ") / tag_bases (" +
                 std::to_string(tag_bases.size()) + ") size mismatch"});
        return out;
    }
    if (parts.empty()) return out;

    const int world = parts[0].world;
    for (std::size_t p = 0; p < parts.size(); ++p) {
        const Schedule& s = parts[p];
        const std::string part_name = "part " + std::to_string(p) + " (" + s.proto + ")";
        if (s.world != world) {
            out.violations.push_back(
                {"well-formed", -1,
                 part_name + ": world " + std::to_string(s.world) +
                     " != part 0 world " + std::to_string(world)});
            return out;
        }
        if (s.absolute_tags) {
            out.violations.push_back(
                {"band-overlap", -1,
                 part_name + " uses absolute tags; it cannot ride a fresh band"});
        }
        if (tag_bases[p] < comm::kFreshTagBase) {
            out.violations.push_back(
                {"band-overlap", -1,
                 part_name + ": band base " + std::to_string(tag_bases[p]) +
                     " below the fresh-tag base — collides with user tags"});
        }
        VerifyResult part = verify_schedule(s, nullptr);
        for (Violation& v : part.violations) {
            v.detail = part_name + ": " + v.detail;
            out.violations.push_back(std::move(v));
        }
        if (!part.bytes_exact) out.bytes_exact = false;
        out.total_messages += part.total_messages;
        out.total_bytes += part.total_bytes;
    }
    // Pairwise band disjointness — THE overlapped-run tag invariant.
    for (std::size_t i = 0; i < parts.size(); ++i) {
        for (std::size_t j = i + 1; j < parts.size(); ++j) {
            const long long ai = tag_bases[i], bi = ai + parts[i].tag_count;
            const long long aj = tag_bases[j], bj = aj + parts[j].tag_count;
            if (ai < bj && aj < bi) {
                out.violations.push_back(
                    {"band-overlap", -1,
                     "parts " + std::to_string(i) + " and " + std::to_string(j) +
                         " share tags: bands [" + std::to_string(ai) + ", " +
                         std::to_string(bi) + ") and [" + std::to_string(aj) +
                         ", " + std::to_string(bj) + ") intersect"});
            }
        }
    }
    if (!out.violations.empty()) return out;

    // Cross-part FIFO-unambiguity on ABSOLUTE tags (belt and braces over
    // band disjointness: catches a part whose offsets escape its band).
    std::map<std::tuple<int, int, int>, std::size_t> abs_senders;
    for (std::size_t p = 0; p < parts.size(); ++p) {
        for (int rank = 0; rank < world; ++rank) {
            for (const CommOp& op : parts[p].rank_ops(rank)) {
                if (op.kind != CommOp::Kind::Send) continue;
                const int abs_tag = tag_bases[p] + op.tag_offset;
                auto [it, fresh] =
                    abs_senders.insert({{rank, op.peer, abs_tag}, p});
                if (!fresh) {
                    out.violations.push_back(
                        {"fifo", rank,
                         "absolute tag " + std::to_string(abs_tag) +
                             " sent on edge " + std::to_string(rank) + " -> " +
                             std::to_string(op.peer) + " by parts " +
                             std::to_string(it->second) + " and " +
                             std::to_string(p)});
                }
            }
        }
    }
    if (!out.violations.empty()) return out;

    // Aggregate traffic across parts.
    out.per_rank.assign(static_cast<std::size_t>(world), RankTraffic{});
    for (const Schedule& s : parts) {
        for (int rank = 0; rank < world; ++rank) {
            RankTraffic& t = out.per_rank[static_cast<std::size_t>(rank)];
            for (const CommOp& op : s.rank_ops(rank)) {
                if (op.bytes == kVariableBytes) t.bytes_exact = false;
                if (op.kind == CommOp::Kind::Send) {
                    ++t.sends;
                    if (op.bytes != kVariableBytes) t.bytes_sent += op.bytes;
                } else {
                    ++t.recvs;
                }
            }
        }
    }

    // Combined pump-all execution: each rank round-robins every part's
    // program (the AsyncCollective executor's semantics — a recv blocked in
    // one part never stalls another part's ops on the same rank).
    struct InFlight {
        std::int64_t bytes;
        double arrival_s;
    };
    std::map<std::tuple<int, int, int>, std::deque<InFlight>> wire;  // abs tags
    std::vector<std::vector<std::size_t>> pc(
        static_cast<std::size_t>(world),
        std::vector<std::size_t>(parts.size(), 0));
    std::vector<double> clock(static_cast<std::size_t>(world), 0.0);
    const bool time_exact = out.bytes_exact && net != nullptr;

    bool progress = true;
    while (progress) {
        progress = false;
        for (int rank = 0; rank < world; ++rank) {
            for (std::size_t p = 0; p < parts.size(); ++p) {
                const auto& ops = parts[p].rank_ops(rank);
                auto& i = pc[static_cast<std::size_t>(rank)][p];
                while (i < ops.size()) {
                    const CommOp& op = ops[i];
                    const int abs_tag = tag_bases[p] + op.tag_offset;
                    if (op.kind == CommOp::Kind::Send) {
                        double arrival = 0.0;
                        if (time_exact) {
                            clock[static_cast<std::size_t>(rank)] +=
                                net->transfer_time_s(
                                    static_cast<std::uint64_t>(op.bytes));
                            arrival = clock[static_cast<std::size_t>(rank)];
                        }
                        wire[{rank, op.peer, abs_tag}].push_back({op.bytes, arrival});
                        ++i;
                        progress = true;
                        continue;
                    }
                    auto it = wire.find({op.peer, rank, abs_tag});
                    if (it == wire.end() || it->second.empty()) break;  // blocked
                    const InFlight msg = it->second.front();
                    it->second.pop_front();
                    if (time_exact) {
                        auto& c = clock[static_cast<std::size_t>(rank)];
                        c = std::max(c, msg.arrival_s);
                    }
                    ++i;
                    progress = true;
                }
            }
        }
    }

    bool any_blocked = false;
    for (int rank = 0; rank < world; ++rank) {
        for (std::size_t p = 0; p < parts.size(); ++p) {
            const auto& ops = parts[p].rank_ops(rank);
            const std::size_t i = pc[static_cast<std::size_t>(rank)][p];
            if (i >= ops.size()) continue;
            any_blocked = true;
            out.violations.push_back(
                {"deadlock", rank,
                 "part " + std::to_string(p) + " (" + parts[p].proto + "): " +
                     op_str(ops[i], rank) + " blocked forever under the "
                                            "combined pump-all execution"});
        }
    }
    if (any_blocked) return out;

    for (const auto& [key, queue] : wire) {
        if (queue.empty()) continue;
        const auto& [src, dst, tag] = key;
        out.violations.push_back(
            {"match", src,
             std::to_string(queue.size()) + " unconsumed send(s) on edge " +
                 std::to_string(src) + " -> " + std::to_string(dst) +
                 " absolute tag " + std::to_string(tag)});
    }

    if (time_exact && out.violations.empty()) {
        double cp = 0.0;
        for (double c : clock) cp = std::max(cp, c);
        out.critical_path_s = cp;
    }
    return out;
}

VerifyResult verify_schedule(const Schedule& sched, const comm::NetworkModel* net) {
    VerifyResult out;
    static_checks(sched, out);
    if (!out.violations.empty()) return out;

    out.per_rank.resize(static_cast<std::size_t>(sched.world));
    for (int rank = 0; rank < sched.world; ++rank) {
        RankTraffic& t = out.per_rank[static_cast<std::size_t>(rank)];
        for (const CommOp& op : sched.rank_ops(rank)) {
            if (op.bytes == kVariableBytes) {
                t.bytes_exact = false;
                out.bytes_exact = false;
            }
            if (op.kind == CommOp::Kind::Send) {
                ++t.sends;
                ++out.total_messages;
                if (op.bytes != kVariableBytes) {
                    t.bytes_sent += op.bytes;
                    out.total_bytes += op.bytes;
                }
            } else {
                ++t.recvs;
            }
        }
    }

    simulate(sched, net, out);
    return out;
}

}  // namespace gtopk::analysis
