// Gradient value quantizers — the related-work compressors the paper's
// Sec. VI says can be COMBINED with top-k sparsification for higher
// compression (Lin et al. report 270-600x total). These quantize the k
// selected VALUES (indices stay exact); the quantization error is fed back
// into the residual by the trainer, the same error-feedback loop that
// makes top-k itself convergent.
//
// All schemes here are deterministic (replica consistency is a hard
// requirement of S-SGD), which corresponds to the deterministic variants
// of the published methods:
//   Uint8MinMax  linear 8-bit quantization between per-message min/max
//   Uint4MinMax  same at 4 bits
//   Ternary      TernGrad-style {-s, 0, +s} with s = max|v|, cutoff s/2
//   OneBit       1-bit SGD: sign * mean(|v|)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace gtopk::quant {

enum class Scheme { None, Uint8MinMax, Uint4MinMax, Ternary, OneBit };

const char* scheme_name(Scheme scheme);

/// Payload bits per quantized value (excluding the constant per-message
/// header of at most two floats). None = 32.
int bits_per_value(Scheme scheme);

/// Encoded form of one value vector.
struct Quantized {
    Scheme scheme = Scheme::None;
    std::int64_t count = 0;
    float lo = 0.0f;   // scheme-dependent parameter (min / scale / mean)
    float hi = 0.0f;   // scheme-dependent parameter (max; unused by some)
    std::vector<std::uint8_t> payload;  // bit-packed codes
};

/// Quantize `values`. Deterministic; empty input yields an empty result.
Quantized quantize(std::span<const float> values, Scheme scheme);

/// Reconstruct the (lossy) values.
std::vector<float> dequantize(const Quantized& q);

/// Convenience: quantize-dequantize round trip (what the trainer applies
/// to the selected values before they leave the worker).
std::vector<float> quantize_dequantize(std::span<const float> values, Scheme scheme);

/// Total wire bits for one sparse message of k entries under a scheme:
/// 32-bit index + quantized value each, plus the two float parameters.
double message_bits(std::size_t k, Scheme scheme);

/// End-to-end compression ratio vs sending the full dense m-float gradient.
double compression_ratio(std::size_t m, std::size_t k, Scheme scheme);

}  // namespace gtopk::quant
