#include "quant/quantizer.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace gtopk::quant {

const char* scheme_name(Scheme scheme) {
    switch (scheme) {
        case Scheme::None: return "none (fp32)";
        case Scheme::Uint8MinMax: return "uint8 min-max";
        case Scheme::Uint4MinMax: return "uint4 min-max";
        case Scheme::Ternary: return "ternary";
        case Scheme::OneBit: return "1-bit sign";
    }
    return "?";
}

int bits_per_value(Scheme scheme) {
    switch (scheme) {
        case Scheme::None: return 32;
        case Scheme::Uint8MinMax: return 8;
        case Scheme::Uint4MinMax: return 4;
        case Scheme::Ternary: return 2;
        case Scheme::OneBit: return 1;
    }
    return 32;
}

namespace {

Quantized quantize_minmax(std::span<const float> values, Scheme scheme, int bits) {
    Quantized q;
    q.scheme = scheme;
    q.count = static_cast<std::int64_t>(values.size());
    const auto [mn, mx] = std::minmax_element(values.begin(), values.end());
    q.lo = *mn;
    q.hi = *mx;
    const int levels = (1 << bits) - 1;
    const float range = q.hi - q.lo;
    const float scale = range > 0.0f ? static_cast<float>(levels) / range : 0.0f;
    const std::size_t per_byte = static_cast<std::size_t>(8 / bits);
    q.payload.assign((values.size() + per_byte - 1) / per_byte, 0);
    for (std::size_t i = 0; i < values.size(); ++i) {
        const int code = static_cast<int>(
            std::lround((values[i] - q.lo) * scale));
        const int clamped = std::clamp(code, 0, levels);
        q.payload[i / per_byte] |= static_cast<std::uint8_t>(
            clamped << (bits * (i % per_byte)));
    }
    return q;
}

std::vector<float> dequantize_minmax(const Quantized& q, int bits) {
    const int levels = (1 << bits) - 1;
    const float range = q.hi - q.lo;
    const float step = levels > 0 ? range / static_cast<float>(levels) : 0.0f;
    const std::size_t per_byte = static_cast<std::size_t>(8 / bits);
    std::vector<float> out(static_cast<std::size_t>(q.count));
    for (std::size_t i = 0; i < out.size(); ++i) {
        const int code =
            (q.payload[i / per_byte] >> (bits * (i % per_byte))) & levels;
        out[i] = q.lo + static_cast<float>(code) * step;
    }
    return out;
}

}  // namespace

Quantized quantize(std::span<const float> values, Scheme scheme) {
    Quantized q;
    q.scheme = scheme;
    q.count = static_cast<std::int64_t>(values.size());
    if (values.empty()) return q;

    switch (scheme) {
        case Scheme::None: {
            q.payload.resize(values.size() * sizeof(float));
            std::memcpy(q.payload.data(), values.data(), q.payload.size());
            return q;
        }
        case Scheme::Uint8MinMax:
            return quantize_minmax(values, scheme, 8);
        case Scheme::Uint4MinMax:
            return quantize_minmax(values, scheme, 4);
        case Scheme::Ternary: {
            // s = max |v|; codes: 0 -> -s, 1 -> 0, 2 -> +s (cutoff s/2).
            float s = 0.0f;
            for (float v : values) s = std::max(s, std::abs(v));
            q.lo = s;
            q.payload.assign((values.size() + 3) / 4, 0);
            for (std::size_t i = 0; i < values.size(); ++i) {
                int code = 1;
                if (values[i] > s / 2.0f) code = 2;
                if (values[i] < -s / 2.0f) code = 0;
                q.payload[i / 4] |= static_cast<std::uint8_t>(code << (2 * (i % 4)));
            }
            return q;
        }
        case Scheme::OneBit: {
            double mean_abs = 0.0;
            for (float v : values) mean_abs += std::abs(v);
            q.lo = static_cast<float>(mean_abs / static_cast<double>(values.size()));
            q.payload.assign((values.size() + 7) / 8, 0);
            for (std::size_t i = 0; i < values.size(); ++i) {
                if (values[i] >= 0.0f) {
                    q.payload[i / 8] |= static_cast<std::uint8_t>(1 << (i % 8));
                }
            }
            return q;
        }
    }
    throw std::logic_error("unknown quantization scheme");
}

std::vector<float> dequantize(const Quantized& q) {
    if (q.count == 0) return {};
    switch (q.scheme) {
        case Scheme::None: {
            std::vector<float> out(static_cast<std::size_t>(q.count));
            std::memcpy(out.data(), q.payload.data(), out.size() * sizeof(float));
            return out;
        }
        case Scheme::Uint8MinMax:
            return dequantize_minmax(q, 8);
        case Scheme::Uint4MinMax:
            return dequantize_minmax(q, 4);
        case Scheme::Ternary: {
            std::vector<float> out(static_cast<std::size_t>(q.count));
            for (std::size_t i = 0; i < out.size(); ++i) {
                const int code = (q.payload[i / 4] >> (2 * (i % 4))) & 3;
                out[i] = code == 0 ? -q.lo : code == 2 ? q.lo : 0.0f;
            }
            return out;
        }
        case Scheme::OneBit: {
            std::vector<float> out(static_cast<std::size_t>(q.count));
            for (std::size_t i = 0; i < out.size(); ++i) {
                const bool positive = (q.payload[i / 8] >> (i % 8)) & 1;
                out[i] = positive ? q.lo : -q.lo;
            }
            return out;
        }
    }
    throw std::logic_error("unknown quantization scheme");
}

std::vector<float> quantize_dequantize(std::span<const float> values, Scheme scheme) {
    if (scheme == Scheme::None) return {values.begin(), values.end()};
    return dequantize(quantize(values, scheme));
}

double message_bits(std::size_t k, Scheme scheme) {
    return static_cast<double>(k) * (32.0 + bits_per_value(scheme)) + 64.0;
}

double compression_ratio(std::size_t m, std::size_t k, Scheme scheme) {
    return static_cast<double>(m) * 32.0 / message_bits(k, scheme);
}

}  // namespace gtopk::quant
