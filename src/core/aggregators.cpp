#include "core/aggregators.hpp"

#include <stdexcept>

#include "collectives/schedule.hpp"
#include "sparse/topk_merge.hpp"
#include "sparse/wire.hpp"

namespace gtopk::core {

namespace {

using collectives::TreeMergeStep;

void send_sparse(Communicator& comm, int dst, int tag, const SparseGradient& g) {
    const std::vector<std::byte> bytes = sparse::serialize(g);
    comm.send(dst, tag, bytes);
}

SparseGradient recv_sparse(Communicator& comm, int src, int tag) {
    return sparse::deserialize(comm.recv(src, tag));
}

}  // namespace

GtopkResult gtopk_allreduce(Communicator& comm, const SparseGradient& local,
                            std::size_t k, const GtopkOptions& options) {
    const int world = comm.size();
    const int rank = comm.rank();
    SparseGradient acc = local;

    if (world > 1) {
        // Fold ranks beyond the largest power-of-two base into the base so
        // the distance-doubling tree below sees a power-of-two world.
        const int base = 1 << collectives::ilog2_floor(world);
        const int excess = world - base;
        const int fold_tag = comm.fresh_tags(1);
        if (rank >= base) {
            send_sparse(comm, rank - base, fold_tag, acc);
        } else if (rank < excess) {
            const SparseGradient incoming = recv_sparse(comm, rank + base, fold_tag);
            acc = sparse::topk_merge(acc, incoming, k);
        }

        // The tree of Fig. 4: at round r, ranks at stride 2^r pair up; the
        // odd-position one ships its [V, I] to its even peer, which merges
        // with ⊤ and carries the result into the next round. After
        // log2(base) rounds rank 0 holds the global top-k.
        const int rounds = collectives::tree_merge_rounds(base);
        const int tree_tag = comm.fresh_tags(rounds);
        if (rank < base) {
            for (int r = 0; r < rounds; ++r) {
                const TreeMergeStep step = collectives::tree_merge_step(rank, r, base);
                if (step.role == TreeMergeStep::Role::Send) {
                    send_sparse(comm, step.peer, tree_tag + r, acc);
                    break;  // folded in; wait for the broadcast
                }
                if (step.role == TreeMergeStep::Role::Receive) {
                    const SparseGradient incoming =
                        recv_sparse(comm, step.peer, tree_tag + r);
                    acc = sparse::topk_merge(acc, incoming, k);
                }
            }
        }

        // Line 19 of Algorithm 3: broadcast rank 0's result to everyone.
        std::vector<std::byte> wire =
            rank == 0 ? sparse::serialize(acc) : std::vector<std::byte>{};
        collectives::broadcast(comm, wire, /*root=*/0, options.bcast);
        acc = sparse::deserialize(wire);
    } else {
        acc = sparse::sparse_topk(acc, k);
    }

    return GtopkResult{std::move(acc)};
}

GtopkResult naive_gtopk_allreduce(Communicator& comm, const SparseGradient& local,
                                  std::size_t k) {
    const std::vector<std::byte> mine = sparse::serialize(local);
    const auto all = collectives::allgatherv<std::byte>(comm, mine);
    SparseGradient sum;
    sum.dense_size = local.dense_size;
    for (const auto& bytes : all) {
        sum = sparse::add(sum, sparse::deserialize(bytes));
    }
    return GtopkResult{sparse::sparse_topk(sum, k)};
}

std::vector<float> topk_allreduce(Communicator& comm, const SparseGradient& local,
                                  AllgatherAlgo algo) {
    // The paper transfers exactly 2k values per worker ([V, I] of equal
    // length k), which keeps contributions equal-sized and lets the
    // efficient equal-block AllGather apply. Our wire format matches that
    // plus a fixed 16-byte header. Equal sizes are a requirement of
    // Algorithm 1 (every worker selects exactly k); enforce it.
    const std::vector<std::byte> mine = sparse::serialize(local);
    std::vector<std::byte> gathered =
        collectives::allgather<std::byte>(comm, mine, algo);

    std::vector<float> dense(static_cast<std::size_t>(local.dense_size), 0.0f);
    const std::size_t block = mine.size();
    for (int g = 0; g < comm.size(); ++g) {
        const std::span<const std::byte> bytes(gathered.data() + block * static_cast<std::size_t>(g),
                                               block);
        const SparseGradient part = sparse::deserialize(bytes);
        if (part.dense_size != local.dense_size || part.nnz() != local.nnz()) {
            throw std::runtime_error(
                "topk_allreduce: workers must contribute equal-size selections");
        }
        part.scatter_add(dense);
    }
    return dense;
}

std::vector<float> dense_allreduce(Communicator& comm, std::span<const float> grad,
                                   AllreduceAlgo algo) {
    std::vector<float> data(grad.begin(), grad.end());
    collectives::allreduce_sum(comm, data, algo);
    return data;
}

}  // namespace gtopk::core
