#include "core/aggregators.hpp"

#include <stdexcept>

#include "collectives/schedule.hpp"
#include "obs/trace.hpp"
#include "sparse/topk_merge.hpp"
#include "sparse/wire.hpp"

namespace gtopk::core {

namespace {

void send_sparse(Communicator& comm, int dst, int tag, const SparseGradient& g,
                 bool pooled) {
    if (pooled) {
        // Serialize straight into a pooled buffer and move it into the
        // message — no owning temporary, no copy into the payload.
        std::vector<std::byte> buf =
            comm.buffer_pool().acquire(sparse::wire_size_bytes(g.nnz()));
        sparse::serialize_into(g, buf);
        comm.send_buffer(dst, tag, std::move(buf));
    } else {
        const std::vector<std::byte> bytes = sparse::serialize(g);
        comm.send(dst, tag, bytes);
    }
}

SparseGradient recv_sparse(Communicator& comm, int src, int tag) {
    return sparse::deserialize(comm.recv(src, tag));
}

/// Receive a sparse gradient and fold it into `acc` with ⊤. The pooled
/// path validates the wire bytes once and merges directly off them (the
/// payload recycles into this rank's pool when `raw` dies); the owning
/// path reproduces the PR-1 materialize-add-reselect sequence.
void recv_merge(Communicator& comm, int src, int tag, SparseGradient& acc,
                std::size_t k, bool pooled, GtopkWorkspace& ws) {
    if (pooled) {
        const comm::PooledBuffer raw = comm.recv_buffer(src, tag);
        const sparse::SparseGradientView v = sparse::deserialize_view(raw.bytes());
        sparse::topk_merge_into(acc, v.dense_size, v.indices, v.values, k, ws.merge);
    } else {
        const SparseGradient incoming = recv_sparse(comm, src, tag);
        acc = sparse::topk_merge(acc, incoming, k);
    }
}

}  // namespace

GtopkResult gtopk_allreduce(Communicator& comm, const SparseGradient& local,
                            std::size_t k, const GtopkOptions& options) {
    const int world = comm.size();
    const int rank = comm.rank();
    SparseGradient acc = local;

    GtopkWorkspace local_ws;
    GtopkWorkspace& ws = options.workspace ? *options.workspace : local_ws;

    obs::Tracer* tracer = comm.tracer();
    obs::ScopedSpan op_span(tracer, comm.clock(), rank, "gtopk.allreduce", "agg");
    op_span.attrs().nnz = static_cast<std::int64_t>(local.nnz());

    if (world > 1) {
        // The merge schedule is the generator's op program: phase 0 folds
        // ranks beyond the largest power-of-two base into the base so the
        // tree sees a power-of-two world; phase 1 is the distance-doubling
        // tree of Fig. 4 — at round r, ranks at stride 2^r pair up, the
        // odd-position one ships its [V, I] to its even peer, which merges
        // with ⊤ and carries the result into the next round. After
        // log2(base) rounds rank 0 holds the global top-k.
        const collectives::Schedule sched =
            collectives::gtopk_merge_schedule(world, collectives::kVariableBytes);
        const int tag = comm.fresh_tags(sched.tag_count);
        for (const collectives::CommOp& op : sched.rank_ops(rank)) {
            const char* span_name = op.phase == 0 ? "gtopk.fold" : "gtopk.merge_round";
            obs::ScopedSpan op_round(tracer, comm.clock(), rank, span_name, "agg");
            op_round.attrs().peer = op.peer;
            if (op.phase == 1) op_round.attrs().round = op.round;
            if (op.kind == collectives::CommOp::Kind::Send) {
                op_round.attrs().nnz = static_cast<std::int64_t>(acc.nnz());
                send_sparse(comm, op.peer, tag + op.tag_offset, acc, options.pooled);
            } else {
                recv_merge(comm, op.peer, tag + op.tag_offset, acc, k, options.pooled,
                           ws);
                op_round.attrs().nnz = static_cast<std::int64_t>(acc.nnz());
                if (op.phase == 1 && tracer) {
                    tracer->metrics().counter("gtopk.merge_rounds").add(1);
                    tracer->metrics().histogram("gtopk.round_nnz").record(acc.nnz());
                }
            }
        }

        // Line 19 of Algorithm 3: broadcast rank 0's result to everyone.
        // ws.wire is the reused broadcast buffer: the root serializes into
        // it, receivers land in it, and the final copy into `acc` reuses
        // acc's (already k-sized) storage.
        obs::ScopedSpan bcast_span(tracer, comm.clock(), rank, "gtopk.broadcast",
                                   "agg");
        if (rank == 0) {
            sparse::serialize_into(acc, ws.wire);
        } else {
            ws.wire.clear();
        }
        collectives::broadcast(comm, ws.wire, /*root=*/0, options.bcast);
        bcast_span.attrs().bytes = static_cast<std::int64_t>(ws.wire.size());
        if (options.pooled) {
            const sparse::SparseGradientView v = sparse::deserialize_view(ws.wire);
            acc.dense_size = v.dense_size;
            acc.indices.assign(v.indices.begin(), v.indices.end());
            acc.values.assign(v.values.begin(), v.values.end());
        } else {
            acc = sparse::deserialize(ws.wire);
        }
    } else {
        acc = sparse::sparse_topk(acc, k);
    }

    if (tracer) tracer->metrics().counter("gtopk.invocations").add(1);
    return GtopkResult{std::move(acc)};
}

GtopkResult naive_gtopk_allreduce(Communicator& comm, const SparseGradient& local,
                                  std::size_t k) {
    obs::ScopedSpan span(comm.tracer(), comm.clock(), comm.rank(),
                         "gtopk.naive_allreduce", "agg");
    span.attrs().nnz = static_cast<std::int64_t>(local.nnz());
    const std::vector<std::byte> mine = sparse::serialize(local);
    const auto all = collectives::allgatherv<std::byte>(comm, mine);
    SparseGradient sum;
    sum.dense_size = local.dense_size;
    for (const auto& bytes : all) {
        sum = sparse::add(sum, sparse::deserialize(bytes));
    }
    return GtopkResult{sparse::sparse_topk(sum, k)};
}

std::vector<float> topk_allreduce(Communicator& comm, const SparseGradient& local,
                                  AllgatherAlgo algo) {
    obs::ScopedSpan span(comm.tracer(), comm.clock(), comm.rank(),
                         "topk.allreduce", "agg");
    span.attrs().nnz = static_cast<std::int64_t>(local.nnz());
    // The paper transfers exactly 2k values per worker ([V, I] of equal
    // length k), which keeps contributions equal-sized and lets the
    // efficient equal-block AllGather apply. Our wire format matches that
    // plus a fixed 16-byte header. Equal sizes are a requirement of
    // Algorithm 1 (every worker selects exactly k); enforce it.
    const std::vector<std::byte> mine = sparse::serialize(local);
    std::vector<std::byte> gathered =
        collectives::allgather<std::byte>(comm, mine, algo);

    std::vector<float> dense(static_cast<std::size_t>(local.dense_size), 0.0f);
    const std::size_t block = mine.size();
    for (int g = 0; g < comm.size(); ++g) {
        const std::span<const std::byte> bytes(gathered.data() + block * static_cast<std::size_t>(g),
                                               block);
        // Zero-copy: validate the block once, scatter straight off the
        // gathered wire bytes (block offsets are 4-byte aligned: the wire
        // size 16 + 8k is divisible by 4).
        const sparse::SparseGradientView part = sparse::deserialize_view(bytes);
        if (part.dense_size != local.dense_size || part.nnz() != local.nnz()) {
            throw std::runtime_error(
                "topk_allreduce: workers must contribute equal-size selections");
        }
        part.scatter_add(dense);
    }
    return dense;
}

std::vector<float> dense_allreduce(Communicator& comm, std::span<const float> grad,
                                   AllreduceAlgo algo) {
    obs::ScopedSpan span(comm.tracer(), comm.clock(), comm.rank(),
                         "dense.allreduce", "agg");
    span.attrs().bytes = static_cast<std::int64_t>(grad.size() * sizeof(float));
    std::vector<float> data(grad.begin(), grad.end());
    collectives::allreduce_sum(comm, data, algo);
    return data;
}

}  // namespace gtopk::core
