// AsyncGtopkAllreduce: the non-blocking form of core::gtopk_allreduce
// (Algorithm 3), built on the AsyncCollective engine — one handle per
// gradient bucket is what lets layer-wise gTop-k overlap communication with
// backward compute (DESIGN.md §14).
//
// The handle executes the SAME op program as the blocking implementation —
// gtopk_merge_schedule (fold + distance-doubling tree to rank 0) composed
// with broadcast_schedule via concat_schedules — over a private async tag
// band, and performs the same ⊤-merge per received contribution. Because
// each handle's merges are independent of every sibling's (disjoint tags,
// deterministic per-handle merge order), the result is bit-identical to
// running the blocking collective on the same inputs, regardless of how
// in-flight handles interleave.
#pragma once

#include <cstddef>
#include <vector>

#include "collectives/async.hpp"
#include "sparse/sparse_gradient.hpp"
#include "sparse/topk_merge.hpp"

namespace gtopk::core {

class AsyncGtopkAllreduce final : public collectives::AsyncCollective {
public:
    /// `local` is this worker's k-sparse contribution, `k` the output
    /// sparsity (same contract as gtopk_allreduce). `scratch` (optional)
    /// shares merge temporaries across handles — safe because a rank's
    /// pumps execute ops one at a time, never two merges concurrently.
    AsyncGtopkAllreduce(comm::Communicator& comm, sparse::SparseGradient local,
                        std::size_t k, sparse::MergeScratch* scratch = nullptr);

    /// The aggregated global top-k; valid once done() (after wait() or a
    /// true test()).
    const sparse::SparseGradient& result() const;

private:
    void op_send(const collectives::CommOp& op, int tag) override;
    void op_recv(const collectives::CommOp& op,
                 std::vector<std::byte> payload) override;
    void on_complete() override;

    bool is_broadcast_op(const collectives::CommOp& op) const {
        return op.tag_offset >= merge_tag_count_;
    }

    sparse::SparseGradient acc_;
    std::size_t k_;
    sparse::MergeScratch own_scratch_;
    sparse::MergeScratch* scratch_;
    int merge_tag_count_ = 0;      // broadcast-stage ops have offsets past it
    std::vector<std::byte> wire_;  // serialized broadcast payload
};

}  // namespace gtopk::core
