// Gradient aggregation algorithms — the heart of the paper.
//
// All three take each worker's local contribution and produce, on EVERY
// worker, an identical aggregate used for the model update:
//
//   dense_allreduce       Eq. 3's full sum via ring AllReduce (Eq. 5 cost).
//   topk_allreduce        Algorithm 1 lines 12-21: AllGather the [V, I]
//                         pairs and sum locally — O(kP) traffic.
//   gtopk_allreduce       Algorithm 3: distance-doubling tree of ⊤ merges
//                         to rank 0, then broadcast — O(k logP) traffic.
//   naive_gtopk_allreduce Algorithm 2: AllGather, sum, then global top-k —
//                         the reference gtopk_allreduce must match exactly.
//
// Sums are returned UN-averaged (no 1/P); trainers decide the scaling, as
// the paper's Algorithm 4 applies eta directly to the selected values.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "collectives/collectives.hpp"
#include "comm/communicator.hpp"
#include "sparse/sparse_gradient.hpp"
#include "sparse/topk_merge.hpp"

namespace gtopk::core {

using collectives::AllgatherAlgo;
using collectives::AllreduceAlgo;
using collectives::BcastAlgo;
using comm::Communicator;
using sparse::SparseGradient;

/// Cross-invocation scratch for gtopk_allreduce: merge-round temporaries
/// and the broadcast wire buffer. Optional — pass one per worker via
/// GtopkOptions::workspace and the per-iteration aggregation stops
/// allocating; without it a local instance amortizes within one call.
struct GtopkWorkspace {
    sparse::MergeScratch merge;
    std::vector<std::byte> wire;
};

/// Knobs for gtopk_allreduce, exposed for the ablation benches.
struct GtopkOptions {
    BcastAlgo bcast = BcastAlgo::BinomialTree;
    /// Allocation-free wire path: serialize into pooled buffers, receive
    /// via zero-copy views, merge in place. Off = the owning
    /// serialize/deserialize/topk_merge path, kept as the A/B baseline for
    /// bench_hotpath. Results are bit-identical either way.
    bool pooled = true;
    GtopkWorkspace* workspace = nullptr;
};

/// Result of a global-top-k aggregation. `global` holds the k
/// largest-|.|-entries of the sum of all workers' sparse gradients (same on
/// every rank, bit-identical). Trainers derive the paper's gMask from
/// `global.indices`.
struct GtopkResult {
    SparseGradient global;
};

/// Algorithm 3 (gTopKAllReduce). `local` is this worker's k-sparse
/// gradient; `k` the output sparsity. Works for any world size (non-power-
/// of-two worlds fold the excess ranks into the tree base first, an
/// extension the paper leaves out by assuming P = 2^j).
GtopkResult gtopk_allreduce(Communicator& comm, const SparseGradient& local,
                            std::size_t k, const GtopkOptions& options = {});

/// Algorithm 2 (naive gTop-k): AllGather everything, sum, select globally.
/// Identical output to gtopk_allreduce; O(kP) traffic. Kept as the
/// correctness oracle and for the paper's Fig. 2 illustration.
GtopkResult naive_gtopk_allreduce(Communicator& comm, const SparseGradient& local,
                                  std::size_t k);

/// Algorithm 1's TopKAllReduce: returns the dense (size m) sum of all
/// workers' sparse gradients. O(kP) traffic via AllGather.
std::vector<float> topk_allreduce(Communicator& comm, const SparseGradient& local,
                                  AllgatherAlgo algo = AllgatherAlgo::RecursiveDoubling);

/// DenseAllReduce: plain sum of the full dense gradient.
std::vector<float> dense_allreduce(Communicator& comm, std::span<const float> grad,
                                   AllreduceAlgo algo = AllreduceAlgo::Ring);

}  // namespace gtopk::core
