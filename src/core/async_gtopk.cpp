#include "core/async_gtopk.hpp"

#include <array>
#include <stdexcept>
#include <utility>

#include "obs/trace.hpp"
#include "sparse/wire.hpp"

namespace gtopk::core {

namespace {

collectives::Schedule make_async_gtopk_schedule(int world) {
    // Exactly the blocking implementation's composition: the tree merge to
    // rank 0 followed by the binomial broadcast, fused into one tag block.
    const std::array<collectives::Schedule, 2> parts = {
        collectives::gtopk_merge_schedule(world, collectives::kVariableBytes),
        collectives::broadcast_schedule(world, /*root=*/0,
                                        collectives::kVariableBytes)};
    return collectives::concat_schedules("gtopk.allreduce.async", parts);
}

}  // namespace

AsyncGtopkAllreduce::AsyncGtopkAllreduce(comm::Communicator& comm,
                                         sparse::SparseGradient local,
                                         std::size_t k,
                                         sparse::MergeScratch* scratch)
    : AsyncCollective(comm, make_async_gtopk_schedule(comm.size()),
                      "gtopk.allreduce.async"),
      acc_(std::move(local)),
      k_(k),
      scratch_(scratch ? scratch : &own_scratch_),
      merge_tag_count_(
          collectives::gtopk_merge_schedule(comm.size(),
                                            collectives::kVariableBytes)
              .tag_count) {}

const sparse::SparseGradient& AsyncGtopkAllreduce::result() const {
    if (!done()) {
        throw std::logic_error(
            "AsyncGtopkAllreduce: result() before completion");
    }
    return acc_;
}

void AsyncGtopkAllreduce::op_send(const collectives::CommOp& op, int tag) {
    if (is_broadcast_op(op)) {
        if (comm().rank() == 0 && wire_.empty()) {
            sparse::serialize_into(acc_, wire_);
        }
        send_async_copy(op, tag, wire_);
        return;
    }
    // Merge stage: ship this handle's running accumulator, serialized
    // straight into a pooled buffer (the blocking path's wire discipline).
    std::vector<std::byte> buf =
        comm().buffer_pool().acquire(sparse::wire_size_bytes(acc_.nnz()));
    sparse::serialize_into(acc_, buf);
    send_async(op, tag, std::move(buf));
}

void AsyncGtopkAllreduce::op_recv(const collectives::CommOp& op,
                                  std::vector<std::byte> payload) {
    if (is_broadcast_op(op)) {
        wire_ = std::move(payload);
        return;
    }
    const sparse::SparseGradientView v = sparse::deserialize_view(payload);
    sparse::topk_merge_into(acc_, v.dense_size, v.indices, v.values, k_,
                            *scratch_);
    if (obs::Tracer* tracer = comm().tracer(); tracer && op.phase == 1) {
        tracer->metrics().counter("gtopk.merge_rounds").add(1);
        tracer->metrics().histogram("gtopk.round_nnz").record(acc_.nnz());
    }
}

void AsyncGtopkAllreduce::on_complete() {
    if (comm().size() == 1) {
        acc_ = sparse::sparse_topk(acc_, k_);
    } else {
        // Everyone — including the root, for bit-exact parity with the
        // blocking path — materializes the broadcast wire as the result.
        const sparse::SparseGradientView v = sparse::deserialize_view(wire_);
        acc_.dense_size = v.dense_size;
        acc_.indices.assign(v.indices.begin(), v.indices.end());
        acc_.values.assign(v.values.begin(), v.values.end());
    }
    if (obs::Tracer* tracer = comm().tracer()) {
        tracer->metrics().counter("gtopk.invocations").add(1);
    }
}

}  // namespace gtopk::core
