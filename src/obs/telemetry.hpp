// Cluster telemetry plane: a global per-iteration stats collective.
//
// Each rank folds its iteration — per-phase host/virtual durations, wire
// bytes moved by the aggregation collective, selection nnz, mailbox depth,
// fault/retransmit counters — into one fixed-size POD RankIterStats, and a
// Schedule-IR-generated ring allgather on the reserved telemetry tag band
// (comm/tags.hpp) makes the full IterSnapshot visible to EVERY rank each
// step. Because the exchange is just another schedule, it is statically
// verified by tools/commcheck, priced by analysis::cost_rules, and composes
// with chaos injection, ReliableTransport and elastic regroup unchanged:
// after a membership regroup the schedule regenerates over the survivor
// world and the epoch floor rejects stale telemetry traffic like any other
// traffic.
//
// Tag discipline: the exchange uses ABSOLUTE tags (kTagTelemetryBase +
// round), never fresh tags, so enabling telemetry does not advance the SPMD
// fresh-tag cursor — training with telemetry on is bit-identical to
// telemetry off by construction, not by tolerance.
//
// Threading contract: exchange() is called by every rank's worker thread at
// the same loop point (SPMD). Per-rank scratch (cached schedule, row
// buffers, the rank's snapshot view) is touched only by the owning thread.
// The shared sinks — history ring, JSONL stream, attribution / straggler /
// flight-recorder consumers — are driven by LOGICAL rank 0 of the current
// view only, under one mutex (the lead can change across a regroup, never
// within a step). Readers of snapshots()/exchanges() run after the cluster
// joins or tolerate a slightly stale ring.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <vector>

#include "collectives/schedule.hpp"
#include "obs/metrics.hpp"

namespace gtopk::comm {
class Communicator;
}

namespace gtopk::obs {

class CostAttribution;
class StragglerDetector;
class FlightRecorder;

/// One rank's folded iteration, the fixed-size wire unit of the telemetry
/// allgather. Field order is chosen so the struct carries no padding (the
/// static_asserts below pin it); raw bytes go over the wire directly.
struct RankIterStats {
    std::int64_t step = -1;
    std::int32_t physical_rank = -1;  // stable identity (trace pid)
    std::int32_t logical_rank = -1;   // position in the current view
    std::int32_t epoch = 0;           // membership epoch at fold time
    std::int32_t regroups = 0;        // regroups this rank survived
    double compute_host_s = 0.0;      // forward/backward (host clock)
    double compress_host_s = 0.0;     // top-k selection (host clock)
    double comm_virtual_s = 0.0;      // aggregation phase (virtual clock)
    double update_host_s = 0.0;       // SGD update (host clock)
    /// Aggregation-collective traffic: deltas of CommStats taken
    /// immediately around the aggregate phase, so epoch-boundary loss
    /// allgathers and the telemetry exchange itself never pollute them.
    std::int64_t wire_bytes_sent = 0;
    std::int64_t wire_bytes_received = 0;
    std::int64_t messages_sent = 0;
    std::int64_t messages_received = 0;
    std::int64_t nnz = -1;            // local selection size (-1: dense)
    std::int64_t mailbox_depth = 0;   // pending inbound messages at fold
    /// Cumulative fabric-wide robustness counters sampled at fold time
    /// (fault.* and reliable.retransmits of the run's shared registry);
    /// consumers diff consecutive snapshots for per-iteration rates.
    std::int64_t faults_injected = 0;
    std::int64_t retransmits = 0;
};

static_assert(std::is_trivially_copyable_v<RankIterStats> &&
                  std::is_standard_layout_v<RankIterStats>,
              "RankIterStats goes over the wire as raw bytes");
static_assert(sizeof(RankIterStats) == 8 + 4 * 4 + 4 * 8 + 8 * 8,
              "RankIterStats must carry no padding (wire format)");

/// The globally-agreed result of one telemetry exchange: every (surviving)
/// rank's RankIterStats for the step, indexed by LOGICAL rank. Identical on
/// every rank by the allgather's correctness.
struct IterSnapshot {
    std::int64_t step = -1;
    int epoch = 0;
    std::vector<RankIterStats> ranks;

    int world() const { return static_cast<int>(ranks.size()); }
    /// Mean aggregation-phase virtual time across ranks.
    double mean_comm_virtual_s() const;
    /// Slowest rank's aggregation-phase virtual time — the comparator for
    /// the schedule's critical path (on asymmetric protos, e.g. the gTop-k
    /// tree on non-power-of-two worlds, non-critical ranks finish early and
    /// the mean undershoots the model).
    double max_comm_virtual_s() const;
    /// Total aggregation-collective bytes sent across ranks.
    std::int64_t total_wire_bytes() const;
};

/// What the trainer ran as its aggregation collective this iteration, in
/// the vocabulary of collectives/schedule.hpp protos — the join key for
/// cost attribution. elems/elem_bytes follow the per-proto convention of
/// analysis::expected_totals (dense: elements x 4; sparse: wire bytes x 1).
struct CollectiveSpec {
    std::string proto;
    std::int64_t elems = 0;
    std::int64_t elem_bytes = 0;
    std::int64_t m = 0;  // model size, report context
    std::int64_t k = 0;  // selection size, report context (0 = dense)
};

/// Read the cumulative fault/retransmit counters out of a metrics registry
/// into `st` (helper shared by the trainers; zero-cost when the counters
/// were never registered).
void fold_fault_counters(const MetricsRegistry& metrics, RankIterStats& st);

class Telemetry {
public:
    struct Config {
        /// Snapshots retained in the in-memory history ring (lead-written).
        std::size_t history = 4096;
        /// Per-iteration JSONL stream ("" = off). One line per exchange,
        /// written by the logical lead rank.
        std::string jsonl_path;
    };

    explicit Telemetry(int world_size);
    Telemetry(int world_size, Config cfg);
    ~Telemetry();
    Telemetry(const Telemetry&) = delete;
    Telemetry& operator=(const Telemetry&) = delete;

    int world_size() const { return static_cast<int>(slots_.size()); }

    /// Consumers, driven by the lead rank under the sink mutex on every
    /// exchange. Set before the run starts; must outlive the Telemetry.
    void set_attribution(CostAttribution* a) { attribution_ = a; }
    void set_straggler(StragglerDetector* s) { straggler_ = s; }
    void set_flight_recorder(FlightRecorder* f) { recorder_ = f; }
    CostAttribution* attribution() const { return attribution_; }
    StragglerDetector* straggler() const { return straggler_; }
    FlightRecorder* flight_recorder() const { return recorder_; }

    /// The per-iteration stats collective: every rank of the current view
    /// calls this at the same loop point with its own folded stats. Executes
    /// the telemetry allgather schedule over comm's logical world and
    /// returns this rank's snapshot view (valid until the rank's next
    /// exchange). The lead rank additionally appends to the history ring /
    /// JSONL and drives the attached consumers.
    const IterSnapshot& exchange(comm::Communicator& comm, RankIterStats mine,
                                 const CollectiveSpec* spec = nullptr);

    /// Copy of the retained snapshot history, oldest first.
    std::vector<IterSnapshot> snapshots() const;
    /// Total exchanges recorded by the lead path.
    std::int64_t exchanges() const;
    const Config& config() const { return cfg_; }

private:
    struct RankSlot;  // per-rank scratch, owner-thread only

    void lead_sink(const IterSnapshot& snap, const CollectiveSpec* spec);

    Config cfg_;
    std::vector<std::unique_ptr<RankSlot>> slots_;

    mutable std::mutex sink_mutex_;
    std::vector<IterSnapshot> history_;  // ring of cfg_.history
    std::size_t history_next_ = 0;
    std::int64_t exchanges_ = 0;
    std::unique_ptr<std::ofstream> jsonl_;

    CostAttribution* attribution_ = nullptr;
    StragglerDetector* straggler_ = nullptr;
    FlightRecorder* recorder_ = nullptr;
};

/// One JSONL telemetry line (the format gtopktop consumes); exposed for the
/// trainer-independent writers (ps_trainer, tests).
void write_snapshot_jsonl(std::ostream& os, const IterSnapshot& snap,
                          const CollectiveSpec* spec,
                          const double* predicted_comm_s);

}  // namespace gtopk::obs
