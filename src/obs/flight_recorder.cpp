#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "obs/trace.hpp"
#include "util/log.hpp"

namespace gtopk::obs {

namespace {

void write_json_string(std::ostream& os, const std::string& s) {
    os << '"';
    for (char c : s) {
        if (c == '"' || c == '\\') {
            os << '\\' << c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
               << "0123456789abcdef"[c & 0xf];
        } else {
            os << c;
        }
    }
    os << '"';
}

}  // namespace

FlightRecorder::FlightRecorder(FlightRecorderConfig cfg) : cfg_(std::move(cfg)) {
    if (cfg_.max_events == 0 || cfg_.max_snapshots == 0) {
        throw std::invalid_argument("FlightRecorder: zero-capacity ring");
    }
}

void FlightRecorder::note_event(const char* kind, int physical_rank,
                                std::int64_t step, int epoch, std::string detail) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (events_.size() >= cfg_.max_events) {
        events_.erase(events_.begin());
        ++events_dropped_;
    }
    events_.push_back(
        Event{kind, physical_rank, step, epoch, host_now_s(), std::move(detail)});
}

void FlightRecorder::note_membership(int epoch, std::vector<int> members,
                                     int physical_rank, std::int64_t step) {
    std::lock_guard<std::mutex> lock(mutex_);
    views_.push_back(
        ViewChange{epoch, std::move(members), physical_rank, step, host_now_s()});
}

void FlightRecorder::add_snapshot(const IterSnapshot& snap) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (snapshots_.size() < cfg_.max_snapshots) {
        snapshots_.push_back(snap);
    } else {
        snapshots_[snapshots_next_] = snap;
    }
    snapshots_next_ = (snapshots_next_ + 1) % cfg_.max_snapshots;
}

bool FlightRecorder::triggered() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return !events_.empty();
}

int FlightRecorder::dumps() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return dumps_;
}

std::size_t FlightRecorder::event_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

std::size_t FlightRecorder::snapshot_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return snapshots_.size();
}

void FlightRecorder::write_bundle(std::ostream& os, const std::string& reason,
                                  const Tracer* tracer) const {
    // Host stamps are steady-clock absolutes; shift so the first recorded
    // event is t = 0, like the Chrome-trace export.
    double h0 = std::numeric_limits<double>::max();
    for (const Event& e : events_) h0 = std::min(h0, e.host_s);
    for (const ViewChange& v : views_) h0 = std::min(h0, v.host_s);
    if (h0 == std::numeric_limits<double>::max()) h0 = 0.0;

    os.precision(std::numeric_limits<double>::max_digits10);
    os << "{\"flight_recorder\":{\"reason\":";
    write_json_string(os, reason);
    os << ",\"dump_seq\":" << dumps_ << ",\"events_dropped\":" << events_dropped_;

    os << ",\"events\":[";
    bool first = true;
    for (const Event& e : events_) {
        if (!first) os << ",";
        first = false;
        os << "{\"kind\":";
        write_json_string(os, e.kind);
        os << ",\"rank\":" << e.physical_rank << ",\"step\":" << e.step
           << ",\"epoch\":" << e.epoch << ",\"t_s\":" << (e.host_s - h0)
           << ",\"detail\":";
        write_json_string(os, e.detail);
        os << "}";
    }

    os << "],\"membership\":[";
    first = true;
    for (const ViewChange& v : views_) {
        if (!first) os << ",";
        first = false;
        os << "{\"epoch\":" << v.epoch << ",\"members\":[";
        for (std::size_t i = 0; i < v.members.size(); ++i) {
            if (i) os << ",";
            os << v.members[i];
        }
        os << "],\"reporter\":" << v.physical_rank << ",\"step\":" << v.step
           << ",\"t_s\":" << (v.host_s - h0) << "}";
    }

    os << "],\"snapshots\":[";
    // Oldest first out of the ring.
    const std::size_t n = snapshots_.size();
    const std::size_t start = n < cfg_.max_snapshots ? 0 : snapshots_next_;
    first = true;
    for (std::size_t i = 0; i < n; ++i) {
        const IterSnapshot& s = snapshots_[(start + i) % n];
        if (!first) os << ",";
        first = false;
        write_snapshot_jsonl(os, s, nullptr, nullptr);
        // write_snapshot_jsonl ends with a newline meant for JSONL streams;
        // inside an array it is harmless whitespace.
    }

    os << "],\"spans\":{";
    if (tracer) {
        for (int r = 0; r < tracer->world_size(); ++r) {
            if (r) os << ",";
            os << "\"rank" << r << "\":{\"recorded\":" << tracer->recorded(r)
               << ",\"dropped\":" << tracer->dropped(r) << ",\"last\":[";
            std::vector<Span> spans = tracer->rank_spans(r);
            const std::size_t keep =
                std::min(spans.size(), cfg_.max_spans_per_rank);
            bool sfirst = true;
            for (std::size_t i = spans.size() - keep; i < spans.size(); ++i) {
                const Span& s = spans[i];
                if (!sfirst) os << ",";
                sfirst = false;
                os << "{\"name\":";
                write_json_string(os, s.name);
                os << ",\"cat\":";
                write_json_string(os, s.category);
                os << ",\"v_begin_s\":" << s.v_begin_s
                   << ",\"v_end_s\":" << s.v_end_s
                   << ",\"h_begin_s\":" << s.h_begin_s
                   << ",\"h_end_s\":" << s.h_end_s
                   << ",\"round\":" << s.attrs.round << "}";
            }
            os << "]}";
        }
    }
    os << "},\"metrics\":";
    if (tracer) {
        tracer->metrics().write_json(os);
    } else {
        os << "null";
    }
    os << "}}\n";
}

bool FlightRecorder::dump(const std::string& reason, const Tracer* tracer) {
    std::lock_guard<std::mutex> lock(mutex_);
    std::ofstream out(cfg_.path, std::ios::out | std::ios::trunc);
    if (!out) {
        util::log_error("flight recorder: cannot open ", cfg_.path,
                        " for writing");
        return false;
    }
    ++dumps_;
    write_bundle(out, reason, tracer);
    return static_cast<bool>(out);
}

}  // namespace gtopk::obs
