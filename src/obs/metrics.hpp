// Metrics registry: named counters, gauges, and log2-bucket histograms.
//
// Cells are lock-free atomics so any thread (a sender stamping the
// destination mailbox depth, a rank counting its own messages) can record
// without serializing the cluster; the registry map itself is only locked on
// first-use creation of a metric. Instances returned by the registry are
// stable for the registry's lifetime, so hot paths cache the pointer once
// and pay a single relaxed atomic op per event afterwards.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace gtopk::obs {

class Counter {
public:
    void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
    std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// Last-written value plus a running maximum (both doubles).
class Gauge {
public:
    void set(double v) {
        value_.store(v, std::memory_order_relaxed);
        double cur = max_.load(std::memory_order_relaxed);
        while (v > cur && !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
        }
    }
    double value() const { return value_.load(std::memory_order_relaxed); }
    double max() const { return max_.load(std::memory_order_relaxed); }
    /// Restart the running maximum from the current value — lets dashboards
    /// track a per-window high-water mark instead of an all-time one.
    void reset_max() {
        max_.store(value_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    }

private:
    std::atomic<double> value_{0.0};
    std::atomic<double> max_{0.0};
};

/// Histogram over non-negative integers with fixed log2 buckets: bucket 0
/// counts exact zeros and bucket b >= 1 counts values v with bit_width(v)
/// == b, i.e. v in [2^(b-1), 2^b - 1]. Fixed buckets keep recording a pure
/// store (no rebalancing) and make message-size / queue-depth distributions
/// comparable across runs.
class Histogram {
public:
    static constexpr int kBuckets = 65;  // zeros + bit widths 1..64

    void record(std::uint64_t v);

    std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
    std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
    double mean() const {
        const std::uint64_t c = count();
        return c == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(c);
    }
    std::uint64_t bucket(int i) const {
        return buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    }
    static int bucket_of(std::uint64_t v);
    /// Inclusive [lo, hi] value range covered by bucket i.
    static std::uint64_t bucket_lo(int i);
    static std::uint64_t bucket_hi(int i);

    /// Approximate q-quantile (q in [0, 1]) with linear interpolation
    /// inside the winning log2 bucket; exact at bucket boundaries, within
    /// a factor-of-two band otherwise. 0 when the histogram is empty.
    double quantile(double q) const;

private:
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
};

class MetricsRegistry {
public:
    /// Find-or-create; returned references stay valid for the registry's
    /// lifetime (cells are heap-allocated, the map only stores pointers).
    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    Histogram& histogram(const std::string& name);

    /// Lookup without creation; nullptr when the metric was never recorded.
    const Counter* find_counter(const std::string& name) const;
    const Gauge* find_gauge(const std::string& name) const;
    const Histogram* find_histogram(const std::string& name) const;

    /// One JSON object: {"counters": {...}, "gauges": {...},
    /// "histograms": {name: {count, sum, p50, p95, p99,
    /// buckets: [[lo, count], ...]}}}.
    void write_json(std::ostream& os) const;

    /// Human-readable dump, one metric per line, sorted by name — the text
    /// twin of write_json for terminals and log files.
    void write_text(std::ostream& os) const;

private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace gtopk::obs
