#include "obs/metrics.hpp"

#include <bit>
#include <limits>
#include <ostream>

namespace gtopk::obs {

int Histogram::bucket_of(std::uint64_t v) { return std::bit_width(v); }

std::uint64_t Histogram::bucket_lo(int i) {
    return i <= 0 ? 0 : (std::uint64_t{1} << (i - 1));
}

std::uint64_t Histogram::bucket_hi(int i) {
    if (i <= 0) return 0;
    if (i >= 64) return std::numeric_limits<std::uint64_t>::max();
    return (std::uint64_t{1} << i) - 1;
}

double Histogram::quantile(double q) const {
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    // Snapshot the cells once; concurrent recorders may skew count vs
    // buckets by an event or two, which the clamp below absorbs.
    std::array<std::uint64_t, kBuckets> snap;
    std::uint64_t total = 0;
    for (int b = 0; b < kBuckets; ++b) {
        snap[static_cast<std::size_t>(b)] = bucket(b);
        total += snap[static_cast<std::size_t>(b)];
    }
    if (total == 0) return 0.0;
    // Rank of the quantile among `total` ordered samples (1-based).
    const double target = q * static_cast<double>(total);
    std::uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
        const std::uint64_t n = snap[static_cast<std::size_t>(b)];
        if (n == 0) continue;
        if (static_cast<double>(seen + n) >= target) {
            // Linear interpolation across the bucket's value range by the
            // fraction of the bucket's mass below the target rank.
            const double lo = static_cast<double>(bucket_lo(b));
            const double hi = static_cast<double>(bucket_hi(b));
            const double frac =
                (target - static_cast<double>(seen)) / static_cast<double>(n);
            return lo + (hi - lo) * (frac < 0.0 ? 0.0 : frac > 1.0 ? 1.0 : frac);
        }
        seen += n;
    }
    return static_cast<double>(bucket_hi(kBuckets - 1));
}

void Histogram::record(std::uint64_t v) {
    buckets_[static_cast<std::size_t>(bucket_of(v))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
}

namespace {

template <typename Map, typename Cell>
Cell& find_or_create(std::mutex& mutex, Map& map, const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex);
    auto it = map.find(name);
    if (it == map.end()) {
        it = map.emplace(name, std::make_unique<Cell>()).first;
    }
    return *it->second;
}

template <typename Map>
auto find_only(std::mutex& mutex, const Map& map, const std::string& name)
    -> decltype(map.begin()->second.get()) {
    std::lock_guard<std::mutex> lock(mutex);
    const auto it = map.find(name);
    return it == map.end() ? nullptr : it->second.get();
}

void write_json_string(std::ostream& os, const std::string& s) {
    os << '"';
    for (char c : s) {
        if (c == '"' || c == '\\') {
            os << '\\' << c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
               << "0123456789abcdef"[c & 0xf];
        } else {
            os << c;
        }
    }
    os << '"';
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name) {
    return find_or_create<decltype(counters_), Counter>(mutex_, counters_, name);
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
    return find_or_create<decltype(gauges_), Gauge>(mutex_, gauges_, name);
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
    return find_or_create<decltype(histograms_), Histogram>(mutex_, histograms_, name);
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
    return find_only(mutex_, counters_, name);
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
    return find_only(mutex_, gauges_, name);
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name) const {
    return find_only(mutex_, histograms_, name);
}

void MetricsRegistry::write_json(std::ostream& os) const {
    std::lock_guard<std::mutex> lock(mutex_);
    os << "{\"counters\":{";
    bool first = true;
    for (const auto& [name, c] : counters_) {
        if (!first) os << ",";
        first = false;
        write_json_string(os, name);
        os << ":" << c->value();
    }
    os << "},\"gauges\":{";
    first = true;
    for (const auto& [name, g] : gauges_) {
        if (!first) os << ",";
        first = false;
        write_json_string(os, name);
        os << ":{\"value\":" << g->value() << ",\"max\":" << g->max() << "}";
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto& [name, h] : histograms_) {
        if (!first) os << ",";
        first = false;
        write_json_string(os, name);
        os << ":{\"count\":" << h->count() << ",\"sum\":" << h->sum()
           << ",\"p50\":" << h->quantile(0.50) << ",\"p95\":" << h->quantile(0.95)
           << ",\"p99\":" << h->quantile(0.99) << ",\"buckets\":[";
        bool first_bucket = true;
        for (int b = 0; b < Histogram::kBuckets; ++b) {
            const std::uint64_t n = h->bucket(b);
            if (n == 0) continue;
            if (!first_bucket) os << ",";
            first_bucket = false;
            os << "[" << Histogram::bucket_lo(b) << "," << n << "]";
        }
        os << "]}";
    }
    os << "}}";
}

void MetricsRegistry::write_text(std::ostream& os) const {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, c] : counters_) {
        os << name << " " << c->value() << "\n";
    }
    for (const auto& [name, g] : gauges_) {
        os << name << " value=" << g->value() << " max=" << g->max() << "\n";
    }
    for (const auto& [name, h] : histograms_) {
        os << name << " count=" << h->count() << " mean=" << h->mean()
           << " p50=" << h->quantile(0.50) << " p95=" << h->quantile(0.95)
           << " p99=" << h->quantile(0.99) << "\n";
    }
}

}  // namespace gtopk::obs
