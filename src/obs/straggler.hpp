// Straggler / imbalance detection over the telemetry snapshot stream.
//
// Per iteration, each rank's compute (host) and comm (virtual) phase times
// are scored against the cluster with a robust z-score — median/MAD across
// the snapshot's ranks, so one slow rank cannot drag the baseline toward
// itself the way a mean/stddev score would. The per-iteration scores are
// then smoothed with a per-physical-rank EWMA; a rank whose smoothed score
// stays above the threshold for `patience` consecutive snapshots raises a
// StragglerEvent through the callback hook (the signal ROADMAP's elastic
// autoscaler consumes) and is re-armed once it drops back below.
//
// Gauges (when a registry is attached): obs.straggler.compute_z.rank<P> and
// obs.straggler.comm_z.rank<P> hold the latest smoothed scores, and the
// obs.straggler.events counter totals raised events.
//
// Thread contract: observe() is serialized by the Telemetry sink mutex; the
// internal mutex additionally makes the accessors safe mid-run.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "obs/telemetry.hpp"

namespace gtopk::obs {

struct StragglerConfig {
    /// EWMA smoothing factor for the per-rank z-scores (1 = no smoothing).
    double ewma_alpha = 0.25;
    /// Smoothed |z| above this marks a rank as suspect.
    double z_threshold = 3.0;
    /// Consecutive suspect snapshots before an event fires.
    int patience = 5;
    /// Below this world size a cross-rank z-score is meaningless; the
    /// detector records nothing (scores stay 0).
    int min_world = 3;
};

struct StragglerEvent {
    int physical_rank = -1;
    std::int64_t step = -1;
    /// "compute" or "comm".
    const char* phase = "";
    /// The smoothed z-score at detection time.
    double z = 0.0;
};

class StragglerDetector {
public:
    explicit StragglerDetector(int world_size, StragglerConfig cfg = {},
                               MetricsRegistry* metrics = nullptr);

    /// Invoked when a rank crosses the sustained-threshold criterion (at
    /// most once per excursion per phase). Runs under the detector's mutex;
    /// keep it cheap and do not call back into the detector.
    void set_callback(std::function<void(const StragglerEvent&)> cb);

    void observe(const IterSnapshot& snap);

    /// Latest smoothed z-scores by PHYSICAL rank (0 until min_world data).
    double compute_z(int physical_rank) const;
    double comm_z(int physical_rank) const;
    std::vector<StragglerEvent> events() const;
    const StragglerConfig& config() const { return cfg_; }

private:
    struct PhaseState {
        double ewma_z = 0.0;
        int over = 0;        // consecutive snapshots above threshold
        bool raised = false; // event already fired for this excursion
        bool seen = false;   // any observation yet (EWMA seeding)
    };
    struct RankState {
        PhaseState compute;
        PhaseState comm;
    };

    void score_phase(PhaseState& ps, double z, int physical_rank,
                     std::int64_t step, const char* phase);

    StragglerConfig cfg_;
    MetricsRegistry* metrics_;
    mutable std::mutex mutex_;
    std::vector<RankState> ranks_;  // by physical rank
    std::vector<StragglerEvent> events_;
    std::function<void(const StragglerEvent&)> callback_;
};

}  // namespace gtopk::obs
