#include "obs/telemetry.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <optional>
#include <span>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "comm/communicator.hpp"
#include "obs/attribution.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/straggler.hpp"

namespace gtopk::obs {

double IterSnapshot::mean_comm_virtual_s() const {
    if (ranks.empty()) return 0.0;
    double sum = 0.0;
    for (const RankIterStats& r : ranks) sum += r.comm_virtual_s;
    return sum / static_cast<double>(ranks.size());
}

double IterSnapshot::max_comm_virtual_s() const {
    double mx = 0.0;
    for (const RankIterStats& r : ranks) mx = std::max(mx, r.comm_virtual_s);
    return mx;
}

std::int64_t IterSnapshot::total_wire_bytes() const {
    std::int64_t sum = 0;
    for (const RankIterStats& r : ranks) sum += r.wire_bytes_sent;
    return sum;
}

void fold_fault_counters(const MetricsRegistry& metrics, RankIterStats& st) {
    static constexpr const char* kFaultCounters[] = {
        "fault.dropped",   "fault.duplicated",   "fault.reordered",
        "fault.corrupted", "fault.delayed",      "fault.killed_sends",
    };
    std::int64_t faults = 0;
    for (const char* name : kFaultCounters) {
        if (const Counter* c = metrics.find_counter(name)) {
            faults += static_cast<std::int64_t>(c->value());
        }
    }
    st.faults_injected = faults;
    if (const Counter* c = metrics.find_counter("reliable.retransmits")) {
        st.retransmits = static_cast<std::int64_t>(c->value());
    }
}

/// Per-physical-rank scratch, touched only by the owning worker thread: the
/// cached schedule (regenerated when the logical world changes, i.e. after
/// a regroup) and the rank's own snapshot view.
struct Telemetry::RankSlot {
    collectives::Schedule sched;
    int sched_world = 0;
    IterSnapshot snap;
};

Telemetry::Telemetry(int world_size) : Telemetry(world_size, Config{}) {}

Telemetry::Telemetry(int world_size, Config cfg) : cfg_(std::move(cfg)) {
    if (world_size <= 0) {
        throw std::invalid_argument("Telemetry: world_size must be > 0");
    }
    if (cfg_.history == 0) throw std::invalid_argument("Telemetry: zero history");
    slots_.reserve(static_cast<std::size_t>(world_size));
    for (int r = 0; r < world_size; ++r) {
        slots_.push_back(std::make_unique<RankSlot>());
    }
    if (!cfg_.jsonl_path.empty()) {
        jsonl_ = std::make_unique<std::ofstream>(cfg_.jsonl_path,
                                                 std::ios::out | std::ios::trunc);
        if (!*jsonl_) {
            throw std::invalid_argument("Telemetry: cannot open jsonl_path " +
                                        cfg_.jsonl_path);
        }
    }
}

Telemetry::~Telemetry() = default;

const IterSnapshot& Telemetry::exchange(comm::Communicator& comm,
                                        RankIterStats mine,
                                        const CollectiveSpec* spec) {
    const int lrank = comm.rank();
    const int world = comm.size();
    RankSlot& slot = *slots_.at(static_cast<std::size_t>(comm.physical_rank()));

    mine.physical_rank = comm.physical_rank();
    mine.logical_rank = lrank;
    mine.epoch = comm.epoch();

    if (slot.sched_world != world) {
        slot.sched = collectives::telemetry_allgather_schedule(
            world, static_cast<std::int64_t>(sizeof(RankIterStats)));
        slot.sched_world = world;
    }

    slot.snap.step = mine.step;
    slot.snap.epoch = mine.epoch;
    std::vector<RankIterStats>& rows = slot.snap.ranks;
    rows.assign(static_cast<std::size_t>(world), RankIterStats{});
    rows[static_cast<std::size_t>(lrank)] = mine;

    using collectives::CommOp;
    for (const CommOp& op : slot.sched.rank_ops(lrank)) {
        if (op.kind == CommOp::Kind::Send) {
            const RankIterStats& row = rows[static_cast<std::size_t>(op.a)];
            comm.send(op.peer, op.tag_offset,
                      std::as_bytes(std::span<const RankIterStats>(&row, 1)));
        } else {
            const comm::PooledBuffer raw = comm.recv_buffer(op.peer, op.tag_offset);
            if (raw.size() != sizeof(RankIterStats)) {
                throw std::runtime_error(
                    "telemetry: stats wire size mismatch (peer speaks a "
                    "different RankIterStats layout?)");
            }
            std::memcpy(&rows[static_cast<std::size_t>(op.a)], raw.bytes().data(),
                        sizeof(RankIterStats));
        }
    }

    // The lead drives the shared sinks. Logical rank 0 always exists and is
    // unique within a view; across a regroup the lead may move to another
    // physical rank, which the sink mutex makes safe.
    if (lrank == 0) lead_sink(slot.snap, spec);
    return slot.snap;
}

void Telemetry::lead_sink(const IterSnapshot& snap, const CollectiveSpec* spec) {
    std::lock_guard<std::mutex> lock(sink_mutex_);
    ++exchanges_;
    if (history_.size() < cfg_.history) {
        history_.push_back(snap);
    } else {
        history_[history_next_] = snap;
    }
    history_next_ = (history_next_ + 1) % cfg_.history;

    std::optional<double> predicted;
    if (attribution_ && spec) predicted = attribution_->observe(snap, *spec);
    if (straggler_) straggler_->observe(snap);
    if (recorder_) recorder_->add_snapshot(snap);
    if (jsonl_) {
        write_snapshot_jsonl(*jsonl_, snap, spec, predicted ? &*predicted : nullptr);
    }
}

std::vector<IterSnapshot> Telemetry::snapshots() const {
    std::lock_guard<std::mutex> lock(sink_mutex_);
    std::vector<IterSnapshot> out;
    out.reserve(history_.size());
    if (history_.size() < cfg_.history) {
        out = history_;  // not yet wrapped: insertion order is age order
    } else {
        out.insert(out.end(),
                   history_.begin() + static_cast<std::ptrdiff_t>(history_next_),
                   history_.end());
        out.insert(out.end(), history_.begin(),
                   history_.begin() + static_cast<std::ptrdiff_t>(history_next_));
    }
    return out;
}

std::int64_t Telemetry::exchanges() const {
    std::lock_guard<std::mutex> lock(sink_mutex_);
    return exchanges_;
}

void write_snapshot_jsonl(std::ostream& os, const IterSnapshot& snap,
                          const CollectiveSpec* spec,
                          const double* predicted_comm_s) {
    const auto flags = os.flags();
    const auto precision = os.precision();
    os.precision(std::numeric_limits<double>::max_digits10);
    os << "{\"step\":" << snap.step << ",\"epoch\":" << snap.epoch
       << ",\"world\":" << snap.world();
    if (spec) {
        os << ",\"proto\":\"" << spec->proto << "\",\"m\":" << spec->m
           << ",\"k\":" << spec->k;
    }
    os << ",\"measured_comm_s\":" << snap.mean_comm_virtual_s();
    if (predicted_comm_s) os << ",\"predicted_comm_s\":" << *predicted_comm_s;
    os << ",\"ranks\":[";
    for (std::size_t i = 0; i < snap.ranks.size(); ++i) {
        const RankIterStats& r = snap.ranks[i];
        if (i) os << ",";
        os << "{\"rank\":" << r.physical_rank << ",\"lrank\":" << r.logical_rank
           << ",\"compute_s\":" << r.compute_host_s
           << ",\"select_s\":" << r.compress_host_s
           << ",\"comm_s\":" << r.comm_virtual_s
           << ",\"update_s\":" << r.update_host_s
           << ",\"bytes_out\":" << r.wire_bytes_sent
           << ",\"bytes_in\":" << r.wire_bytes_received
           << ",\"msgs_out\":" << r.messages_sent
           << ",\"msgs_in\":" << r.messages_received << ",\"nnz\":" << r.nnz
           << ",\"mailbox\":" << r.mailbox_depth
           << ",\"faults\":" << r.faults_injected
           << ",\"retransmits\":" << r.retransmits << "}";
    }
    os << "]}\n";
    os.flags(flags);
    os.precision(precision);
}

}  // namespace gtopk::obs
