#include "obs/straggler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace gtopk::obs {

namespace {

double median_inplace(std::vector<double>& v) {
    if (v.empty()) return 0.0;
    const std::size_t mid = v.size() / 2;
    std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                     v.end());
    const double hi = v[mid];
    if (v.size() % 2 == 1) return hi;
    const double lo =
        *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
    return 0.5 * (lo + hi);
}

/// Robust z: 0.6745 (x - median) / MAD, the consistency-scaled form that
/// matches a standard z-score under normality. MAD == 0 (all ranks equal,
/// common for virtual-time comm phases) scores everyone 0.
double robust_z(double x, double median, double mad) {
    if (mad <= 0.0) return 0.0;
    return 0.6745 * (x - median) / mad;
}

}  // namespace

StragglerDetector::StragglerDetector(int world_size, StragglerConfig cfg,
                                     MetricsRegistry* metrics)
    : cfg_(cfg), metrics_(metrics) {
    if (world_size <= 0) {
        throw std::invalid_argument("StragglerDetector: world_size must be > 0");
    }
    if (!(cfg_.ewma_alpha > 0.0) || cfg_.ewma_alpha > 1.0) {
        throw std::invalid_argument("StragglerDetector: ewma_alpha in (0, 1]");
    }
    ranks_.resize(static_cast<std::size_t>(world_size));
}

void StragglerDetector::set_callback(std::function<void(const StragglerEvent&)> cb) {
    std::lock_guard<std::mutex> lock(mutex_);
    callback_ = std::move(cb);
}

void StragglerDetector::score_phase(PhaseState& ps, double z, int physical_rank,
                                    std::int64_t step, const char* phase) {
    if (!ps.seen) {
        ps.ewma_z = z;
        ps.seen = true;
    } else {
        ps.ewma_z = cfg_.ewma_alpha * z + (1.0 - cfg_.ewma_alpha) * ps.ewma_z;
    }
    if (std::abs(ps.ewma_z) >= cfg_.z_threshold) {
        ++ps.over;
        if (!ps.raised && ps.over >= cfg_.patience) {
            ps.raised = true;
            const StragglerEvent ev{physical_rank, step, phase, ps.ewma_z};
            events_.push_back(ev);
            if (metrics_) metrics_->counter("obs.straggler.events").add(1);
            if (callback_) callback_(ev);
        }
    } else {
        ps.over = 0;
        ps.raised = false;  // excursion over; re-arm
    }
    if (metrics_) {
        metrics_
            ->gauge("obs.straggler." + std::string(phase) + "_z.rank" +
                    std::to_string(physical_rank))
            .set(ps.ewma_z);
    }
}

void StragglerDetector::observe(const IterSnapshot& snap) {
    if (snap.world() < cfg_.min_world) return;
    std::vector<double> compute, comm, scratch;
    compute.reserve(snap.ranks.size());
    comm.reserve(snap.ranks.size());
    for (const RankIterStats& r : snap.ranks) {
        compute.push_back(r.compute_host_s);
        comm.push_back(r.comm_virtual_s);
    }
    const auto med_mad = [&scratch](const std::vector<double>& xs) {
        scratch = xs;
        const double med = median_inplace(scratch);
        for (double& x : scratch) x = std::abs(x - med);
        const double mad = median_inplace(scratch);
        return std::pair<double, double>(med, mad);
    };
    const auto [compute_med, compute_mad] = med_mad(compute);
    const auto [comm_med, comm_mad] = med_mad(comm);

    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < snap.ranks.size(); ++i) {
        const RankIterStats& r = snap.ranks[i];
        if (r.physical_rank < 0 ||
            r.physical_rank >= static_cast<int>(ranks_.size())) {
            continue;
        }
        RankState& rs = ranks_[static_cast<std::size_t>(r.physical_rank)];
        score_phase(rs.compute, robust_z(compute[i], compute_med, compute_mad),
                    r.physical_rank, snap.step, "compute");
        score_phase(rs.comm, robust_z(comm[i], comm_med, comm_mad),
                    r.physical_rank, snap.step, "comm");
    }
}

double StragglerDetector::compute_z(int physical_rank) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return ranks_.at(static_cast<std::size_t>(physical_rank)).compute.ewma_z;
}

double StragglerDetector::comm_z(int physical_rank) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return ranks_.at(static_cast<std::size_t>(physical_rank)).comm.ewma_z;
}

std::vector<StragglerEvent> StragglerDetector::events() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return events_;
}

}  // namespace gtopk::obs
