// Measured-vs-predicted cost attribution: the telemetry consumer that joins
// the per-iteration measured virtual-time phase totals against the alpha-beta
// predictions the static layer already owns — expected_totals
// (analysis/cost_rules.hpp) for message/byte counts and the verified
// schedule's simulated critical path (analysis/verify.hpp) for time. The
// predictor is the SAME op program the live collective executes, so the
// prediction is exact for any world size, uneven ring blocks included; a
// nonzero delta on a fault-free run means the implementation and the model
// disagree, which is a bug in one of them.
//
// Entries are keyed by (proto, world, elems, elem_bytes): a density-warmup
// schedule lands each epoch's k in its own entry, and a membership regroup
// moves subsequent iterations to the survivor-world entry. Each entry's
// first observed iteration is excluded from the measured mean — the
// virtual clocks start mutually unsynchronized, and the first pass through a
// schedule absorbs that skew before the steady state repeats exactly.
//
// Thread contract: observe() is serialized by the Telemetry sink mutex; the
// internal mutex additionally makes entries()/write_json() safe mid-run.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "comm/network_model.hpp"
#include "obs/telemetry.hpp"

namespace gtopk::obs {

struct AttributionEntry {
    std::string proto;
    int world = 0;
    std::int64_t elems = 0;
    std::int64_t elem_bytes = 0;
    std::int64_t m = 0;
    std::int64_t k = 0;

    /// All iterations observed under this key.
    std::int64_t iterations = 0;
    /// Iterations past the per-key transient (the first observation).
    std::int64_t steady_iterations = 0;
    /// Sum over steady iterations of the mean-across-ranks aggregate-phase
    /// virtual time.
    double measured_comm_s = 0.0;
    /// The excluded first observation, reported separately.
    double first_comm_s = 0.0;
    /// Cluster-wide wire traffic summed over ALL iterations (bytes are
    /// exact from iteration one).
    std::int64_t measured_bytes = 0;
    std::int64_t measured_messages = 0;

    /// Per-iteration predictions (nullopt: no closed form / variable bytes).
    std::optional<double> predicted_comm_s;
    std::optional<std::int64_t> predicted_bytes;
    std::optional<std::int64_t> predicted_messages;

    double mean_measured_comm_s() const {
        if (steady_iterations > 0) {
            return measured_comm_s / static_cast<double>(steady_iterations);
        }
        return iterations > 0 ? first_comm_s : 0.0;
    }
    std::optional<double> delta_s() const {
        if (!predicted_comm_s) return std::nullopt;
        return mean_measured_comm_s() - *predicted_comm_s;
    }
    /// measured / predicted; 1.0 means the model is exact.
    std::optional<double> ratio() const {
        if (!predicted_comm_s || *predicted_comm_s <= 0.0) return std::nullopt;
        return mean_measured_comm_s() / *predicted_comm_s;
    }
};

class CostAttribution {
public:
    /// `metrics` (optional) receives obs.model.* gauges on every observe:
    /// obs.model.<proto>.measured_s / .predicted_s / .delta_s / .ratio.
    explicit CostAttribution(comm::NetworkModel net,
                             MetricsRegistry* metrics = nullptr);

    /// Join one snapshot against the model under `spec`'s key. Returns the
    /// per-iteration predicted aggregate-phase time when the proto has an
    /// exact-byte schedule (rides into the telemetry JSONL line).
    std::optional<double> observe(const IterSnapshot& snap,
                                  const CollectiveSpec& spec);

    std::vector<AttributionEntry> entries() const;

    /// {"alpha_s":..,"beta_s":..,"entries":[{...}]} — the JSON report.
    void write_json(std::ostream& os) const;
    bool write_json_file(const std::string& path) const;

private:
    struct Key {
        std::string proto;
        int world;
        std::int64_t elems;
        std::int64_t elem_bytes;
        bool operator<(const Key& o) const {
            if (proto != o.proto) return proto < o.proto;
            if (world != o.world) return world < o.world;
            if (elems != o.elems) return elems < o.elems;
            return elem_bytes < o.elem_bytes;
        }
    };

    comm::NetworkModel net_;
    MetricsRegistry* metrics_;
    mutable std::mutex mutex_;
    std::map<Key, AttributionEntry> entries_;
};

}  // namespace gtopk::obs
