// Postmortem flight recorder: one forensic JSON bundle explaining a failure
// after the fact.
//
// During the run, the recovery paths feed it cheap, mutex-guarded ring
// buffers: fault/recovery events (CommError, regroup, rollback, kill),
// membership-view transitions with their epochs, and the trailing telemetry
// snapshots (via Telemetry::set_flight_recorder). dump() then writes the
// whole state — plus the last-N spans per rank and the metrics registry
// when a Tracer is supplied — as a single JSON file.
//
// Threading/epoch contract (DESIGN.md §13): note_* calls are safe from any
// worker thread at any time (one mutex, bounded rings, no I/O). dump() with
// a tracer reads EVERY rank's span ring, which is only race-free after the
// cluster has joined — so the trainers dump from the driver thread once
// run_on returns (or unwinds), never from inside a worker. Each dump
// rewrites the file with everything known so far; dumps are therefore
// idempotent and the last one wins. Events carry the membership epoch their
// reporter observed, so a bundle orders overlapping regroups correctly.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "obs/telemetry.hpp"

namespace gtopk::obs {

class Tracer;

struct FlightRecorderConfig {
    /// Bundle path written by dump().
    std::string path = "flight_recorder.json";
    std::size_t max_events = 512;
    std::size_t max_snapshots = 64;
    /// Trailing spans exported per rank (from the Tracer handed to dump).
    std::size_t max_spans_per_rank = 256;
};

class FlightRecorder {
public:
    explicit FlightRecorder(FlightRecorderConfig cfg = {});

    /// Record a fault/recovery event: kind is a short stable token
    /// ("comm_error", "regroup", "rollback", "resync", "rank_killed"),
    /// detail free-form human text.
    void note_event(const char* kind, int physical_rank, std::int64_t step,
                    int epoch, std::string detail);

    /// Record an installed membership view.
    void note_membership(int epoch, std::vector<int> members, int physical_rank,
                         std::int64_t step);

    /// Telemetry feed (lead rank, via Telemetry::set_flight_recorder).
    void add_snapshot(const IterSnapshot& snap);

    /// True once any event was noted — the trainers' "something went wrong,
    /// write the bundle" trigger.
    bool triggered() const;

    /// Write the bundle. `tracer` (optional) contributes the last-N spans
    /// of every rank plus the metrics dump — pass it only from the driver
    /// thread after the cluster joined (see the threading contract above).
    /// Returns false (and logs) when the file cannot be written.
    bool dump(const std::string& reason, const Tracer* tracer = nullptr);

    int dumps() const;
    const std::string& path() const { return cfg_.path; }
    const FlightRecorderConfig& config() const { return cfg_; }

    /// Introspection for tests.
    std::size_t event_count() const;
    std::size_t snapshot_count() const;

private:
    struct Event {
        std::string kind;
        int physical_rank = -1;
        std::int64_t step = -1;
        int epoch = 0;
        double host_s = 0.0;  // host_now_s() at note time
        std::string detail;
    };
    struct ViewChange {
        int epoch = 0;
        std::vector<int> members;
        int physical_rank = -1;  // reporter
        std::int64_t step = -1;
        double host_s = 0.0;
    };

    void write_bundle(std::ostream& os, const std::string& reason,
                      const Tracer* tracer) const;

    FlightRecorderConfig cfg_;
    mutable std::mutex mutex_;
    std::vector<Event> events_;          // bounded: oldest dropped
    std::uint64_t events_dropped_ = 0;
    std::vector<ViewChange> views_;      // full timeline (regroups are rare)
    std::vector<IterSnapshot> snapshots_;  // ring of max_snapshots
    std::size_t snapshots_next_ = 0;
    int dumps_ = 0;
};

}  // namespace gtopk::obs
