#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "util/log.hpp"

namespace gtopk::obs {

double host_now_s() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

Tracer::Tracer(int world_size, std::size_t capacity_per_rank)
    : capacity_(capacity_per_rank) {
    if (world_size <= 0) throw std::invalid_argument("Tracer: world_size must be > 0");
    if (capacity_per_rank == 0) throw std::invalid_argument("Tracer: zero capacity");
    ranks_.reserve(static_cast<std::size_t>(world_size));
    for (int r = 0; r < world_size; ++r) {
        ranks_.push_back(std::make_unique<RankBuffer>());
    }
}

void Tracer::record(const Span& span) {
    RankBuffer& buf = *ranks_.at(static_cast<std::size_t>(span.rank));
    if (buf.ring.size() < capacity_) {
        buf.ring.push_back(span);
    } else {
        buf.ring[buf.next] = span;
    }
    buf.next = (buf.next + 1) % capacity_;
    buf.pushed += 1;
}

int Tracer::enter(int rank) {
    return ranks_.at(static_cast<std::size_t>(rank))->open_depth++;
}

void Tracer::exit(int rank) {
    ranks_.at(static_cast<std::size_t>(rank))->open_depth--;
}

std::vector<Span> Tracer::rank_spans(int rank) const {
    const RankBuffer& buf = *ranks_.at(static_cast<std::size_t>(rank));
    std::vector<Span> out;
    out.reserve(buf.ring.size());
    if (buf.ring.size() < capacity_) {
        out = buf.ring;  // not yet wrapped: insertion order is age order
    } else {
        out.insert(out.end(), buf.ring.begin() + static_cast<std::ptrdiff_t>(buf.next),
                   buf.ring.end());
        out.insert(out.end(), buf.ring.begin(),
                   buf.ring.begin() + static_cast<std::ptrdiff_t>(buf.next));
    }
    return out;
}

std::uint64_t Tracer::recorded(int rank) const {
    return ranks_.at(static_cast<std::size_t>(rank))->pushed;
}

std::uint64_t Tracer::dropped(int rank) const {
    const RankBuffer& buf = *ranks_.at(static_cast<std::size_t>(rank));
    return buf.pushed - buf.ring.size();
}

namespace {

void write_escaped(std::ostream& os, const char* s) {
    os << '"';
    for (; *s; ++s) {
        const char c = *s;
        if (c == '"' || c == '\\') {
            os << '\\' << c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
               << "0123456789abcdef"[c & 0xf];
        } else {
            os << c;
        }
    }
    os << '"';
}

void write_args(std::ostream& os, const SpanAttrs& a) {
    os << "{";
    bool first = true;
    auto field = [&](const char* key, std::int64_t v) {
        if (v < 0) return;
        if (!first) os << ",";
        first = false;
        os << '"' << key << "\":" << v;
    };
    field("bytes", a.bytes);
    field("nnz", a.nnz);
    field("peer", a.peer);
    field("tag", a.tag);
    field("round", a.round);
    os << "}";
}

void write_event(std::ostream& os, const Span& s, int tid, double ts_us,
                 double dur_us, bool& first_event) {
    if (!first_event) os << ",\n";
    first_event = false;
    os << "{\"name\":";
    write_escaped(os, s.name);
    os << ",\"cat\":";
    write_escaped(os, s.category);
    os << ",\"ph\":\"X\",\"pid\":" << s.rank << ",\"tid\":" << tid
       << ",\"ts\":" << ts_us << ",\"dur\":" << dur_us << ",\"args\":";
    write_args(os, s.attrs);
    os << "}";
}

void write_meta(std::ostream& os, const char* meta, int pid, int tid,
                const std::string& value, bool& first_event) {
    if (!first_event) os << ",\n";
    first_event = false;
    os << "{\"name\":\"" << meta << "\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":" << tid << ",\"args\":{\"name\":";
    write_escaped(os, value.c_str());
    os << "}}";
}

}  // namespace

void Tracer::write_chrome_trace(std::ostream& os) const {
    // Host stamps are steady-clock absolutes; shift them so the earliest
    // retained span starts at t = 0 on the host timeline.
    double h0 = std::numeric_limits<double>::max();
    for (int r = 0; r < world_size(); ++r) {
        for (const Span& s : rank_spans(r)) h0 = std::min(h0, s.h_begin_s);
    }
    if (h0 == std::numeric_limits<double>::max()) h0 = 0.0;

    os << "{\"traceEvents\":[\n";
    bool first = true;
    for (int r = 0; r < world_size(); ++r) {
        write_meta(os, "process_name", r, 0, "rank " + std::to_string(r), first);
        write_meta(os, "thread_name", r, 0, "virtual time", first);
        write_meta(os, "thread_name", r, 1, "host time", first);
        // Ring-buffer accounting so a truncated timeline is detectable from
        // the trace alone: dropped > 0 means the oldest spans were evicted.
        os << ",\n{\"name\":\"span_buffer\",\"ph\":\"M\",\"pid\":" << r
           << ",\"tid\":0,\"args\":{\"recorded\":" << recorded(r)
           << ",\"dropped\":" << dropped(r) << "}}";
        for (const Span& s : rank_spans(r)) {
            write_event(os, s, /*tid=*/0, s.v_begin_s * 1e6,
                        (s.v_end_s - s.v_begin_s) * 1e6, first);
            write_event(os, s, /*tid=*/1, (s.h_begin_s - h0) * 1e6,
                        (s.h_end_s - s.h_begin_s) * 1e6, first);
        }
    }
    os << "\n],\"displayTimeUnit\":\"ms\",\"metrics\":";
    metrics_.write_json(os);
    os << "}\n";
}

bool Tracer::write_chrome_trace_file(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
        util::log_error("trace: cannot open ", path, " for writing");
        return false;
    }
    write_chrome_trace(out);
    return static_cast<bool>(out);
}

PhaseTotals summarize_train_phases(const Tracer& tracer, int rank) {
    PhaseTotals totals;
    for (const Span& s : tracer.rank_spans(rank)) {
        if (std::strcmp(s.category, "train") != 0) continue;
        if (std::strcmp(s.name, "compute") == 0) {
            totals.compute_host_s += s.h_end_s - s.h_begin_s;
            totals.iterations += 1;
        } else if (std::strcmp(s.name, "select") == 0) {
            totals.compress_host_s += s.h_end_s - s.h_begin_s;
        } else if (std::strcmp(s.name, "aggregate") == 0) {
            totals.comm_virtual_s += s.v_end_s - s.v_begin_s;
        }
    }
    return totals;
}

}  // namespace gtopk::obs
