#include "obs/attribution.hpp"

#include <fstream>
#include <limits>
#include <ostream>

#include "analysis/cost_rules.hpp"
#include "analysis/verify.hpp"
#include "collectives/schedule.hpp"
#include "util/log.hpp"

namespace gtopk::obs {

namespace {

using collectives::Schedule;

/// The op program behind each proto the trainers attribute — the same
/// generators the live collectives execute. nullopt: no fixed-size schedule
/// exists (variable-byte allgatherv, the PS layer above this library).
std::optional<Schedule> schedule_for(const std::string& proto, int world,
                                     std::int64_t elems, std::int64_t elem_bytes) {
    using namespace collectives;
    if (proto == "allreduce.ring") {
        return allreduce_ring_schedule(world, elems, elem_bytes);
    }
    if (proto == "gtopk.allreduce") {
        const std::int64_t wire = elems * elem_bytes;
        const Schedule parts[] = {
            gtopk_merge_schedule(world, wire),
            broadcast_schedule(world, 0, wire, BcastAlgo::BinomialTree)};
        return concat_schedules("gtopk.allreduce", parts);
    }
    if (proto == "allgather.recursive_doubling" || proto == "allgather.ring") {
        // The generator itself degrades RecursiveDoubling to the ring on
        // non-power-of-two worlds, matching the live fallback.
        return allgather_schedule(world, elems, elem_bytes,
                                  proto == "allgather.ring"
                                      ? AllgatherAlgo::Ring
                                      : AllgatherAlgo::RecursiveDoubling);
    }
    if (proto == "telemetry.allgather") {
        return telemetry_allgather_schedule(world, elems * elem_bytes);
    }
    return std::nullopt;
}

}  // namespace

CostAttribution::CostAttribution(comm::NetworkModel net, MetricsRegistry* metrics)
    : net_(net), metrics_(metrics) {}

std::optional<double> CostAttribution::observe(const IterSnapshot& snap,
                                               const CollectiveSpec& spec) {
    std::lock_guard<std::mutex> lock(mutex_);
    const Key key{spec.proto, snap.world(), spec.elems, spec.elem_bytes};
    auto it = entries_.find(key);
    if (it == entries_.end()) {
        AttributionEntry e;
        e.proto = spec.proto;
        e.world = snap.world();
        e.elems = spec.elems;
        e.elem_bytes = spec.elem_bytes;
        e.m = spec.m;
        e.k = spec.k;
        if (const auto totals = analysis::expected_totals(
                spec.proto, e.world, spec.elems, spec.elem_bytes)) {
            e.predicted_messages = totals->messages;
            e.predicted_bytes = totals->bytes;
        }
        if (const auto sched =
                schedule_for(spec.proto, e.world, spec.elems, spec.elem_bytes)) {
            const analysis::VerifyResult vr = analysis::verify_schedule(*sched, &net_);
            if (vr.ok()) e.predicted_comm_s = vr.critical_path_s;
        }
        it = entries_.emplace(key, std::move(e)).first;
    }

    AttributionEntry& e = it->second;
    // Compare like with like: the prediction is the schedule's critical
    // path, so the measurement is the slowest rank, not the rank mean.
    const double measured = snap.max_comm_virtual_s();
    if (e.iterations == 0) {
        e.first_comm_s = measured;
    } else {
        e.measured_comm_s += measured;
        ++e.steady_iterations;
    }
    ++e.iterations;
    e.measured_bytes += snap.total_wire_bytes();
    for (const RankIterStats& r : snap.ranks) e.measured_messages += r.messages_sent;

    if (metrics_) {
        const std::string base = "obs.model." + spec.proto;
        metrics_->gauge(base + ".measured_s").set(measured);
        if (e.predicted_comm_s) {
            metrics_->gauge(base + ".predicted_s").set(*e.predicted_comm_s);
            metrics_->gauge(base + ".delta_s").set(measured - *e.predicted_comm_s);
            if (*e.predicted_comm_s > 0.0) {
                metrics_->gauge(base + ".ratio").set(measured / *e.predicted_comm_s);
            }
        }
    }
    return e.predicted_comm_s;
}

std::vector<AttributionEntry> CostAttribution::entries() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<AttributionEntry> out;
    out.reserve(entries_.size());
    for (const auto& [key, e] : entries_) out.push_back(e);
    return out;
}

void CostAttribution::write_json(std::ostream& os) const {
    const auto precision = os.precision();
    os.precision(std::numeric_limits<double>::max_digits10);
    os << "{\"alpha_s\":" << net_.alpha_s << ",\"beta_s\":" << net_.beta_s
       << ",\"entries\":[";
    bool first = true;
    for (const AttributionEntry& e : entries()) {
        if (!first) os << ",";
        first = false;
        os << "{\"proto\":\"" << e.proto << "\",\"world\":" << e.world
           << ",\"elems\":" << e.elems << ",\"elem_bytes\":" << e.elem_bytes
           << ",\"m\":" << e.m << ",\"k\":" << e.k
           << ",\"iterations\":" << e.iterations
           << ",\"measured_mean_comm_s\":" << e.mean_measured_comm_s();
        if (e.predicted_comm_s) {
            os << ",\"predicted_comm_s\":" << *e.predicted_comm_s;
        }
        if (const auto d = e.delta_s()) os << ",\"delta_s\":" << *d;
        if (const auto r = e.ratio()) os << ",\"ratio\":" << *r;
        if (e.iterations > 0) {
            os << ",\"measured_bytes_per_iter\":"
               << e.measured_bytes / e.iterations
               << ",\"measured_messages_per_iter\":"
               << e.measured_messages / e.iterations;
        }
        if (e.predicted_bytes) os << ",\"predicted_bytes\":" << *e.predicted_bytes;
        if (e.predicted_messages) {
            os << ",\"predicted_messages\":" << *e.predicted_messages;
        }
        os << "}";
    }
    os << "]}";
    os.precision(precision);
}

bool CostAttribution::write_json_file(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
        util::log_error("attribution: cannot open ", path, " for writing");
        return false;
    }
    write_json(out);
    out << "\n";
    return static_cast<bool>(out);
}

}  // namespace gtopk::obs
