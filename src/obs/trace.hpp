// Per-rank span tracer with virtual-clock and host-clock stamps.
//
// The cluster's timing story lives on the virtual clock (see
// comm/virtual_clock.hpp), but phases like forward/backward compute are
// host-timed; a span therefore carries BOTH clocks' start/end stamps.
// Chrome-trace export puts every rank on its own "process" with two
// "threads": tid 0 is the virtual timeline (the paper's alpha-beta time)
// and tid 1 the host timeline, so Perfetto shows the modeled schedule and
// the implementation cost side by side.
//
// Threading contract: each rank's ring buffer is written ONLY by that
// rank's worker thread (the Communicator and trainer always trace their own
// rank), so recording is a plain store — no locks, no atomics. Cross-thread
// observations (a sender stamping the destination's queue depth) go through
// the atomic MetricsRegistry instead. Readers (export, tests) run after the
// cluster joins.
//
// Disabled path: every instrumentation site holds a nullable Tracer*; with
// a null tracer, ScopedSpan's constructor/destructor reduce to one branch
// each, so tracing costs nothing when off.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "comm/virtual_clock.hpp"
#include "obs/metrics.hpp"

namespace gtopk::obs {

/// Optional span payload; -1 / negative means "not set" and is omitted from
/// the export.
struct SpanAttrs {
    std::int64_t bytes = -1;  // wire bytes moved by this phase
    std::int64_t nnz = -1;    // sparse entries involved
    int peer = -1;            // peer rank of a point-to-point phase
    int tag = -1;             // message tag
    int round = -1;           // collective round / tree level / iteration
};

struct Span {
    const char* name = "";      // must have static storage (string literals)
    const char* category = "";  // "comm" | "collective" | "agg" | "train"
    int rank = 0;
    int depth = 0;  // nesting level at open time (0 = top level)
    double v_begin_s = 0.0, v_end_s = 0.0;  // virtual clock
    double h_begin_s = 0.0, h_end_s = 0.0;  // host steady clock
    SpanAttrs attrs;
};

/// Host steady-clock now, in seconds (arbitrary epoch; export normalizes).
double host_now_s();

class Tracer {
public:
    /// One ring buffer per rank, each holding the most recent
    /// `capacity_per_rank` spans (older spans are overwritten, counted in
    /// dropped()).
    explicit Tracer(int world_size, std::size_t capacity_per_rank = 1 << 16);

    int world_size() const { return static_cast<int>(ranks_.size()); }
    std::size_t capacity_per_rank() const { return capacity_; }

    /// Append a finished span to `span.rank`'s ring buffer. Must be called
    /// from that rank's own thread (see the threading contract above).
    void record(const Span& span);

    /// Nesting bookkeeping used by ScopedSpan: returns the depth for a span
    /// opening now on `rank` and increments the rank's open-span count.
    int enter(int rank);
    void exit(int rank);

    /// Retained spans, oldest first (at most capacity_per_rank).
    std::vector<Span> rank_spans(int rank) const;
    /// Total spans ever recorded on / overwritten out of `rank`'s buffer.
    std::uint64_t recorded(int rank) const;
    std::uint64_t dropped(int rank) const;

    MetricsRegistry& metrics() { return metrics_; }
    const MetricsRegistry& metrics() const { return metrics_; }

    /// Chrome-trace (a.k.a. Perfetto legacy JSON) export: object form with
    /// "traceEvents" plus a top-level "metrics" dump. Timestamps are in
    /// microseconds; tid 0 carries virtual time, tid 1 host time.
    void write_chrome_trace(std::ostream& os) const;
    /// Returns false (and logs) when the file cannot be written.
    bool write_chrome_trace_file(const std::string& path) const;

private:
    struct RankBuffer {
        std::vector<Span> ring;     // capacity_ slots once full
        std::size_t next = 0;       // ring insert position
        std::uint64_t pushed = 0;   // lifetime count
        int open_depth = 0;         // currently-open ScopedSpans
    };

    std::vector<std::unique_ptr<RankBuffer>> ranks_;
    std::size_t capacity_;
    MetricsRegistry metrics_;
};

/// RAII span: stamps both clocks at construction and again at finish() /
/// destruction, then records into the tracer. With a null tracer every
/// member is a no-op behind one branch.
class ScopedSpan {
public:
    ScopedSpan(Tracer* tracer, const comm::VirtualClock& clock, int rank,
               const char* name, const char* category)
        : tracer_(tracer), clock_(&clock) {
        if (!tracer_) return;
        span_.name = name;
        span_.category = category;
        span_.rank = rank;
        span_.depth = tracer_->enter(rank);
        span_.v_begin_s = clock.now_s();
        span_.h_begin_s = host_now_s();
    }
    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;
    ~ScopedSpan() { finish(); }

    /// Close the span now (idempotent; the destructor then does nothing).
    void finish() {
        if (!tracer_) return;
        span_.v_end_s = clock_->now_s();
        span_.h_end_s = host_now_s();
        tracer_->exit(span_.rank);
        tracer_->record(span_);
        tracer_ = nullptr;
    }

    bool enabled() const { return tracer_ != nullptr; }
    /// Attribute slot; writable even when disabled (the stores are trivial
    /// and keeping call sites branch-free reads better).
    SpanAttrs& attrs() { return span_.attrs; }

private:
    Tracer* tracer_;
    const comm::VirtualClock* clock_;
    Span span_{};
};

/// Phase totals of the trainer loop derived from a rank's spans: host time
/// for the compute/select phases, virtual time for the aggregation phase —
/// the same convention as TrainResult's accumulator-based means.
struct PhaseTotals {
    double compute_host_s = 0.0;
    double compress_host_s = 0.0;
    double comm_virtual_s = 0.0;
    std::uint64_t iterations = 0;

    double mean_compute_s() const { return iterations ? compute_host_s / static_cast<double>(iterations) : 0.0; }
    double mean_compress_s() const { return iterations ? compress_host_s / static_cast<double>(iterations) : 0.0; }
    double mean_comm_virtual_s() const { return iterations ? comm_virtual_s / static_cast<double>(iterations) : 0.0; }
};

PhaseTotals summarize_train_phases(const Tracer& tracer, int rank);

}  // namespace gtopk::obs
