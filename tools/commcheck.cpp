// commcheck — static model checker for the collective communication
// schedules (src/analysis/). For every protocol and world size it:
//
//   1. generates the exact op program the live implementation executes
//      (collectives/schedule.hpp, ps/ps_schedule.hpp),
//   2. proves match-completeness, FIFO-unambiguity, deadlock-freedom and
//      tag-range discipline by simulated execution (verify.hpp),
//   3. checks per-rank/total message and byte counts against the closed
//      forms of the paper's Table I (cost_rules.hpp),
//   4. prices the schedule on the alpha-beta clock and compares the
//      critical path against cost_model.hpp where a closed form applies.
//
// Usage:
//   commcheck [--proto all|<name>] [--world 1..64] [--report out.json] [-v]
//   commcheck --survivors [--world 2..16] [--seed N] [-v]
//   commcheck --concurrent [--world 2..16] [-v]
//
// Protocols: barrier broadcast broadcast-flat reduce allreduce-ring
//            allreduce-rd allreduce-rabenseifner allgather allgather-ring
//            allgatherv gather gtopk ps
//
// --survivors verifies the ELASTIC REGROUP path: for every physical world
// in the range it enumerates survivor subsets (every drop-one subset plus
// seeded random multi-death subsets), rebuilds each regroup-regenerated
// protocol over the logical survivor world, remaps it onto the surviving
// physical ranks (remap_schedule — the static mirror of
// Communicator::set_view) and proves (a) all of verify_schedule's
// invariants still hold on the physical schedule and (b) survivor
// confinement: no op lives on or addresses a dead rank.
//
// --concurrent verifies the OVERLAPPED-TRAINING path: for every world in
// the range and several bucket counts it builds the exact schedule set the
// trainer's AsyncCollective handles execute in flight together (one
// bucketed gTop-k = merge + broadcast per bucket), rebases each part onto
// the async-band tag block fresh_async_tags would hand that handle, and
// proves band disjointness, cross-part FIFO-unambiguity, and
// deadlock-freedom of the combined pump-all execution
// (verify_concurrent_schedules).
//
// Exit code 0 iff every check passes.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "analysis/cost_rules.hpp"
#include "analysis/verify.hpp"
#include "collectives/cost_model.hpp"
#include "collectives/schedule.hpp"
#include "comm/tags.hpp"
#include "obs/telemetry.hpp"
#include "ps/ps_schedule.hpp"
#include "util/rng.hpp"

namespace {

using gtopk::analysis::ExpectedTotals;
using gtopk::analysis::VerifyResult;
using gtopk::analysis::expected_totals;
using gtopk::analysis::verify_schedule;
using namespace gtopk::collectives;

// Representative payload: power-of-two element count so every
// divisibility-gated closed form (rabenseifner, ring Eq. 5) applies on
// power-of-two worlds, and uneven ring blocks get exercised elsewhere.
constexpr std::int64_t kElems = 4096;
constexpr std::int64_t kElemBytes = 4;
constexpr std::int64_t kTopk = 32;                       // gtopk selection size
constexpr std::int64_t kWireBytes = 16 + 8 * kTopk;      // sparse wire payload
constexpr std::int64_t kStatsBytes =                     // telemetry stats block
    static_cast<std::int64_t>(sizeof(gtopk::obs::RankIterStats));

struct ProtoCase {
    std::string name;        // CLI name
    int min_world = 1;
    /// Generate the schedule, or nullopt when the protocol is undefined at
    /// this world size (e.g. power-of-two-only algorithms).
    std::function<std::optional<Schedule>(int world)> make;
    /// Closed-form critical-path seconds, when one applies at this world.
    std::function<std::optional<double>(const gtopk::comm::NetworkModel&, int world)>
        expected_time;
    /// Elements fed to expected_totals (per-protocol meaning).
    std::int64_t elems = kElems;
    std::int64_t elem_bytes = kElemBytes;
};

std::vector<ProtoCase> make_cases() {
    using gtopk::comm::NetworkModel;
    std::vector<ProtoCase> cases;

    cases.push_back({"barrier", 1,
                     [](int w) { return barrier_schedule(w); },
                     [](const NetworkModel& net, int w) -> std::optional<double> {
                         // Tokens are 1 byte, not 0: allow the beta sliver.
                         if (w == 1) return 0.0;
                         return ilog2_ceil(w) * net.transfer_time_s(1);
                     },
                     1, 1});
    cases.push_back({"broadcast", 1,
                     [](int w) {
                         return broadcast_schedule(w, 0, kElems * kElemBytes,
                                                   BcastAlgo::BinomialTree);
                     },
                     [](const NetworkModel& net, int w) -> std::optional<double> {
                         return broadcast_time_s(net, w,
                                                 static_cast<std::uint64_t>(kElems));
                     }});
    cases.push_back({"broadcast-flat", 1,
                     [](int w) {
                         return broadcast_schedule(w, 0, kElems * kElemBytes,
                                                   BcastAlgo::FlatTree);
                     },
                     [](const NetworkModel& net, int w) -> std::optional<double> {
                         return flat_broadcast_time_s(
                             net, w, static_cast<std::uint64_t>(kElems));
                     }});
    cases.push_back({"reduce", 1,
                     [](int w) { return reduce_schedule(w, 0, kElems * kElemBytes); },
                     [](const NetworkModel&, int) { return std::nullopt; }});
    cases.push_back({"allreduce-ring", 1,
                     [](int w) {
                         return allreduce_ring_schedule(w, kElems, kElemBytes);
                     },
                     [](const NetworkModel& net, int w) -> std::optional<double> {
                         // Eq. 5 is the exact critical path only when the
                         // blocks are even.
                         if (kElems % w != 0) return std::nullopt;
                         return dense_allreduce_time_s(
                             net, w, static_cast<std::uint64_t>(kElems));
                     }});
    cases.push_back({"allreduce-rd", 1,
                     [](int w) -> std::optional<Schedule> {
                         if (w > 1 && !is_power_of_two(w)) return std::nullopt;
                         return allreduce_recursive_doubling_schedule(w, kElems,
                                                                      kElemBytes);
                     },
                     [](const NetworkModel& net, int w) -> std::optional<double> {
                         if (w == 1) return 0.0;
                         return ilog2_floor(w) *
                                net.transfer_time_elems(
                                    static_cast<std::uint64_t>(kElems));
                     }});
    cases.push_back({"allreduce-rabenseifner", 1,
                     [](int w) -> std::optional<Schedule> {
                         if (w > 1 && (!is_power_of_two(w) || kElems % w != 0)) {
                             return std::nullopt;
                         }
                         return allreduce_rabenseifner_schedule(w, kElems, kElemBytes);
                     },
                     [](const NetworkModel& net, int w) -> std::optional<double> {
                         return rabenseifner_allreduce_time_s(
                             net, w, static_cast<std::uint64_t>(kElems));
                     }});
    cases.push_back({"allgather", 1,
                     [](int w) {
                         return allgather_schedule(w, kElems, kElemBytes,
                                                   AllgatherAlgo::RecursiveDoubling);
                     },
                     [](const NetworkModel& net, int w) -> std::optional<double> {
                         // Eq. 6 applies to the recursive-doubling form; the
                         // generator falls back to the ring off powers of two.
                         if (!is_power_of_two(w)) return std::nullopt;
                         return allgather_time_s(net, w,
                                                 static_cast<std::uint64_t>(kElems));
                     }});
    cases.push_back({"allgather-ring", 1,
                     [](int w) {
                         return allgather_schedule(w, kElems, kElemBytes,
                                                   AllgatherAlgo::Ring);
                     },
                     [](const NetworkModel& net, int w) -> std::optional<double> {
                         if (w == 1) return 0.0;
                         return (w - 1) * net.transfer_time_elems(
                                              static_cast<std::uint64_t>(kElems));
                     }});
    cases.push_back({"allgatherv", 1,
                     [](int w) {
                         // Exact per-rank sizes so byte/time checks bind.
                         std::vector<std::int64_t> sizes(
                             static_cast<std::size_t>(w), kElems * kElemBytes);
                         return allgatherv_schedule(
                             w, std::span<const std::int64_t>(sizes));
                     },
                     [](const NetworkModel& net, int w) -> std::optional<double> {
                         if (w == 1) return 0.0;
                         return (w - 1) * net.transfer_time_elems(
                                              static_cast<std::uint64_t>(kElems));
                     }});
    cases.push_back({"gather", 1,
                     [](int w) { return gather_schedule(w, 0, kElems * kElemBytes); },
                     [](const NetworkModel&, int) { return std::nullopt; }});
    cases.push_back({"gtopk", 1,
                     [](int w) -> std::optional<Schedule> {
                         // The full collective: merge to rank 0, then the
                         // binomial broadcast of the result (Algorithm 3).
                         const Schedule parts[] = {
                             gtopk_merge_schedule(w, kWireBytes),
                             broadcast_schedule(w, 0, kWireBytes,
                                                BcastAlgo::BinomialTree)};
                         return concat_schedules("gtopk.allreduce", parts);
                     },
                     [](const NetworkModel& net, int w) -> std::optional<double> {
                         // Eq. 7 with k' = k + 2: the 16-byte wire header
                         // rides along as two extra 4-byte elements.
                         if (!is_power_of_two(w)) return std::nullopt;
                         return gtopk_allreduce_time_s(
                             net, w, static_cast<std::uint64_t>(kTopk + 2));
                     },
                     kWireBytes, 1});
    cases.push_back({"ps", 2,
                     [](int w) {
                         return gtopk::ps::ps_iteration_schedule(
                             w - 1, kElems * kElemBytes, kElems * kElemBytes);
                     },
                     [](const NetworkModel&, int) { return std::nullopt; }});
    cases.push_back({"telemetry", 1,
                     [](int w) {
                         return telemetry_allgather_schedule(w, kStatsBytes);
                     },
                     [](const NetworkModel& net, int w) -> std::optional<double> {
                         // Ring allgather of one stats block per step.
                         if (w == 1) return 0.0;
                         return (w - 1) * net.transfer_time_s(
                                              static_cast<std::uint64_t>(kStatsBytes));
                     },
                     kStatsBytes, 1});
    return cases;
}

struct CaseResult {
    std::string proto;       // schedule proto string
    std::string case_name;   // CLI case
    int world = 0;
    bool skipped = false;
    bool ok = true;
    std::vector<std::string> failures;
    std::int64_t messages = 0;
    std::int64_t bytes = -1;
    double critical_path_s = -1.0;
    double expected_time_s = -1.0;
};

std::string json_escape(const std::string& s) {
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (c == '\n') {
            out += "\\n";
        } else {
            out += c;
        }
    }
    return out;
}

bool parse_world_range(const std::string& arg, int& lo, int& hi) {
    const auto dots = arg.find("..");
    try {
        if (dots == std::string::npos) {
            lo = hi = std::stoi(arg);
        } else {
            lo = std::stoi(arg.substr(0, dots));
            hi = std::stoi(arg.substr(dots + 2));
        }
    } catch (const std::exception&) {
        return false;
    }
    return lo >= 1 && hi >= lo;
}

// ---------------------------------------------------------------------------
// --survivors mode: regrouped-schedule verification
// ---------------------------------------------------------------------------

/// The protocols the trainer regenerates after a membership regroup, built
/// over the LOGICAL survivor world (the regrouped Communicator's size()).
struct RegroupProto {
    std::string name;
    std::function<Schedule(int logical_world)> make;
};

std::vector<RegroupProto> make_regroup_protos() {
    std::vector<RegroupProto> protos;
    protos.push_back({"gtopk", [](int w) {
                          const Schedule parts[] = {
                              gtopk_merge_schedule(w, kWireBytes),
                              broadcast_schedule(w, 0, kWireBytes,
                                                 BcastAlgo::BinomialTree)};
                          return concat_schedules("gtopk.allreduce", parts);
                      }});
    protos.push_back({"barrier", [](int w) { return barrier_schedule(w); }});
    protos.push_back({"broadcast", [](int w) {
                          return broadcast_schedule(w, 0, kElems * kElemBytes,
                                                    BcastAlgo::BinomialTree);
                      }});
    protos.push_back({"allreduce-ring", [](int w) {
                          return allreduce_ring_schedule(w, kElems, kElemBytes);
                      }});
    protos.push_back({"allgather-ring", [](int w) {
                          return allgather_schedule(w, kElems, kElemBytes,
                                                    AllgatherAlgo::Ring);
                      }});
    protos.push_back({"allgatherv", [](int w) {
                          std::vector<std::int64_t> sizes(
                              static_cast<std::size_t>(w), kElems * kElemBytes);
                          return allgatherv_schedule(
                              w, std::span<const std::int64_t>(sizes));
                      }});
    protos.push_back({"telemetry", [](int w) {
                          return telemetry_allgather_schedule(w, kStatsBytes);
                      }});
    return protos;
}

/// All survivor subsets checked for one physical world: every drop-one
/// subset (the common single-failure case the trainer demo exercises), plus
/// seeded random multi-death subsets down to 1 survivor.
std::vector<std::vector<int>> survivor_subsets(int world, std::uint64_t seed) {
    std::vector<std::vector<int>> subsets;
    for (int dead = 0; dead < world; ++dead) {
        std::vector<int> s;
        for (int r = 0; r < world; ++r) {
            if (r != dead) s.push_back(r);
        }
        subsets.push_back(std::move(s));
    }
    gtopk::util::Xoshiro256 rng =
        gtopk::util::Xoshiro256(seed).fork(static_cast<std::uint64_t>(world));
    for (int trial = 0; trial < 4; ++trial) {
        std::vector<int> s;
        for (int r = 0; r < world; ++r) {
            if (rng.next_double() < 0.5) s.push_back(r);
        }
        if (s.empty()) s.push_back(static_cast<int>(rng.next_double() * world) % world);
        subsets.push_back(std::move(s));
    }
    return subsets;
}

int run_survivor_sweep(int world_lo, int world_hi, std::uint64_t seed,
                       bool verbose) {
    const std::vector<RegroupProto> protos = make_regroup_protos();
    int checked = 0, failed = 0;
    for (int world = std::max(2, world_lo); world <= world_hi; ++world) {
        for (const std::vector<int>& survivors : survivor_subsets(world, seed)) {
            for (const RegroupProto& p : protos) {
                const Schedule logical =
                    p.make(static_cast<int>(survivors.size()));
                const Schedule physical = remap_schedule(
                    logical, std::span<const int>(survivors), world);
                std::vector<std::string> failures;
                // The remapped schedule must satisfy every invariant the
                // original did — peers/tags/FIFO/match/deadlock all survive
                // the rank translation.
                const VerifyResult v = verify_schedule(physical);
                for (const auto& viol : v.violations) {
                    failures.push_back("[" + viol.check + "] rank " +
                                       std::to_string(viol.rank) + ": " +
                                       viol.detail);
                }
                for (const auto& viol : gtopk::analysis::
                         verify_survivor_confinement(
                             physical, std::span<const int>(survivors))) {
                    failures.push_back("[" + viol.check + "] rank " +
                                       std::to_string(viol.rank) + ": " +
                                       viol.detail);
                }
                ++checked;
                if (!failures.empty()) ++failed;
                if (verbose || !failures.empty()) {
                    std::string subset;
                    for (int r : survivors) subset += std::to_string(r) + " ";
                    std::printf("%-16s P=%-3d survivors={ %s} %s\n",
                                p.name.c_str(), world, subset.c_str(),
                                failures.empty() ? "ok" : "FAIL");
                    for (const auto& f : failures) {
                        std::printf("    %s\n", f.c_str());
                    }
                }
            }
        }
    }
    std::printf("commcheck --survivors: %d regrouped schedule(s) verified, "
                "%d failed (worlds %d..%d, seed %llu)\n",
                checked, failed, std::max(2, world_lo), world_hi,
                static_cast<unsigned long long>(seed));
    return failed == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// --concurrent mode: overlapped schedule-set verification
// ---------------------------------------------------------------------------

/// One in-flight bucketed gTop-k handle's schedule — exactly what
/// core::AsyncGtopkAllreduce executes (merge to rank 0 + binomial
/// broadcast, concatenated).
Schedule bucket_gtopk_schedule(int world) {
    const Schedule parts[] = {
        gtopk_merge_schedule(world, kWireBytes),
        broadcast_schedule(world, 0, kWireBytes, BcastAlgo::BinomialTree)};
    return concat_schedules("gtopk.allreduce.async", parts);
}

int run_concurrent_sweep(int world_lo, int world_hi, bool verbose) {
    const gtopk::comm::NetworkModel net =
        gtopk::comm::NetworkModel::one_gbps_ethernet();
    constexpr int kBucketCounts[] = {2, 3, 5, 8};
    int checked = 0, failed = 0;
    for (int world = std::max(2, world_lo); world <= world_hi; ++world) {
        for (int buckets : kBucketCounts) {
            // Replay the Communicator's async-band cursor: handle i gets the
            // block starting where handle i-1's ended.
            std::vector<Schedule> parts;
            std::vector<int> bases;
            int cursor = gtopk::comm::kAsyncTagBase;
            for (int b = 0; b < buckets; ++b) {
                parts.push_back(bucket_gtopk_schedule(world));
                bases.push_back(cursor);
                cursor += parts.back().tag_count;
            }
            const VerifyResult v = gtopk::analysis::verify_concurrent_schedules(
                parts, std::span<const int>(bases), &net);
            ++checked;
            if (!v.ok()) ++failed;
            if (verbose || !v.ok()) {
                std::printf("concurrent-gtopk P=%-3d buckets=%d %s\n", world,
                            buckets, v.ok() ? "ok" : "FAIL");
                for (const auto& viol : v.violations) {
                    std::printf("    [%s] rank %d: %s\n", viol.check.c_str(),
                                viol.rank, viol.detail.c_str());
                }
            }
        }
    }
    std::printf("commcheck --concurrent: %d overlapped schedule set(s) "
                "verified, %d failed (worlds %d..%d)\n",
                checked, failed, std::max(2, world_lo), world_hi);
    return failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    std::string proto_filter = "all";
    int world_lo = 1, world_hi = 64;
    std::string report_path;
    bool verbose = false;
    bool survivors_mode = false;
    bool concurrent_mode = false;
    bool world_given = false;
    std::uint64_t seed = 1;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "commcheck: %s needs a value\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--proto") {
            proto_filter = next();
        } else if (arg == "--world") {
            if (!parse_world_range(next(), world_lo, world_hi)) {
                std::fprintf(stderr, "commcheck: bad --world range\n");
                return 2;
            }
            world_given = true;
        } else if (arg == "--report") {
            report_path = next();
        } else if (arg == "--survivors") {
            survivors_mode = true;
        } else if (arg == "--concurrent") {
            concurrent_mode = true;
        } else if (arg == "--seed") {
            try {
                seed = std::stoull(next());
            } catch (const std::exception&) {
                std::fprintf(stderr, "commcheck: bad --seed\n");
                return 2;
            }
        } else if (arg == "-v" || arg == "--verbose") {
            verbose = true;
        } else if (arg == "-h" || arg == "--help") {
            std::printf(
                "usage: commcheck [--proto all|NAME] [--world LO..HI] "
                "[--report FILE.json] [-v]\n"
                "       commcheck --survivors [--world 2..16] [--seed N] [-v]\n"
                "       commcheck --concurrent [--world 2..16] [-v]\n");
            return 0;
        } else {
            std::fprintf(stderr, "commcheck: unknown argument %s\n", arg.c_str());
            return 2;
        }
    }

    if (survivors_mode) {
        // Default survivor sweep covers worlds 2..16: every drop-one subset
        // plus seeded multi-death subsets per world.
        if (!world_given) {
            world_lo = 2;
            world_hi = 16;
        }
        return run_survivor_sweep(world_lo, world_hi, seed, verbose);
    }
    if (concurrent_mode) {
        if (!world_given) {
            world_lo = 2;
            world_hi = 16;
        }
        return run_concurrent_sweep(world_lo, world_hi, verbose);
    }

    const gtopk::comm::NetworkModel net =
        gtopk::comm::NetworkModel::one_gbps_ethernet();
    const std::vector<ProtoCase> cases = make_cases();
    bool filter_matched = false;
    std::vector<CaseResult> results;
    int checked = 0, failed = 0, skipped = 0;

    for (const ProtoCase& pc : cases) {
        if (proto_filter != "all" && proto_filter != pc.name) continue;
        filter_matched = true;
        for (int world = std::max(world_lo, pc.min_world); world <= world_hi; ++world) {
            CaseResult r;
            r.case_name = pc.name;
            r.world = world;
            const std::optional<Schedule> sched = pc.make(world);
            if (!sched) {
                r.skipped = true;
                ++skipped;
                results.push_back(std::move(r));
                continue;
            }
            r.proto = sched->proto;
            const VerifyResult v = verify_schedule(*sched, &net);
            r.messages = v.total_messages;
            if (v.bytes_exact) r.bytes = v.total_bytes;
            for (const auto& viol : v.violations) {
                r.failures.push_back("[" + viol.check + "] rank " +
                                     std::to_string(viol.rank) + ": " + viol.detail);
            }

            // Closed-form count checks (paper Table I, count column).
            if (const auto exp =
                    expected_totals(sched->proto, world, pc.elems, pc.elem_bytes)) {
                if (exp->messages != v.total_messages) {
                    r.failures.push_back(
                        "[counts] total messages " + std::to_string(v.total_messages) +
                        " != closed form " + std::to_string(exp->messages));
                }
                if (exp->bytes && v.bytes_exact && *exp->bytes != v.total_bytes) {
                    r.failures.push_back(
                        "[counts] total bytes " + std::to_string(v.total_bytes) +
                        " != closed form " + std::to_string(*exp->bytes));
                }
            } else {
                r.failures.push_back("[counts] no closed form registered for proto " +
                                     sched->proto);
            }

            // Alpha-beta critical path vs cost_model.hpp (time column).
            if (const auto want = pc.expected_time(net, world)) {
                r.expected_time_s = *want;
                if (v.critical_path_s) {
                    r.critical_path_s = *v.critical_path_s;
                    const double diff = std::abs(*v.critical_path_s - *want);
                    const double tol = 1e-12 + 1e-9 * std::abs(*want);
                    if (diff > tol) {
                        r.failures.push_back(
                            "[time] simulated critical path " +
                            std::to_string(*v.critical_path_s) + "s != closed form " +
                            std::to_string(*want) + "s");
                    }
                } else if (!v.violations.empty()) {
                    // Already reported; the time check is moot.
                } else {
                    r.failures.push_back(
                        "[time] closed form exists but schedule bytes are "
                        "not exact — cannot price");
                }
            } else if (v.critical_path_s) {
                r.critical_path_s = *v.critical_path_s;
            }

            r.ok = r.failures.empty();
            ++checked;
            if (!r.ok) ++failed;
            if (verbose || !r.ok) {
                std::printf("%-22s P=%-3d %s\n", pc.name.c_str(), world,
                            r.ok ? "ok" : "FAIL");
                for (const auto& f : r.failures) {
                    std::printf("    %s\n", f.c_str());
                }
            }
            results.push_back(std::move(r));
        }
    }

    if (!filter_matched) {
        std::fprintf(stderr, "commcheck: unknown proto '%s'\n", proto_filter.c_str());
        return 2;
    }

    std::printf("commcheck: %d schedule(s) verified, %d failed, %d skipped "
                "(undefined world sizes)\n",
                checked, failed, skipped);

    if (!report_path.empty()) {
        std::ofstream out(report_path);
        if (!out) {
            std::fprintf(stderr, "commcheck: cannot write %s\n", report_path.c_str());
            return 2;
        }
        out << "{\n  \"checked\": " << checked << ",\n  \"failed\": " << failed
            << ",\n  \"skipped\": " << skipped << ",\n  \"results\": [\n";
        for (std::size_t i = 0; i < results.size(); ++i) {
            const CaseResult& r = results[i];
            out << "    {\"case\": \"" << json_escape(r.case_name) << "\", "
                << "\"proto\": \"" << json_escape(r.proto) << "\", "
                << "\"world\": " << r.world << ", "
                << "\"skipped\": " << (r.skipped ? "true" : "false") << ", "
                << "\"ok\": " << (r.ok ? "true" : "false") << ", "
                << "\"messages\": " << r.messages << ", "
                << "\"bytes\": " << r.bytes << ", "
                << "\"critical_path_s\": " << r.critical_path_s << ", "
                << "\"expected_time_s\": " << r.expected_time_s << ", "
                << "\"failures\": [";
            for (std::size_t j = 0; j < r.failures.size(); ++j) {
                out << (j ? ", " : "") << '"' << json_escape(r.failures[j]) << '"';
            }
            out << "]}" << (i + 1 < results.size() ? "," : "") << "\n";
        }
        out << "  ]\n}\n";
        std::printf("commcheck: report written to %s\n", report_path.c_str());
    }

    return failed == 0 ? 0 : 1;
}
