// gtopkrun: the mpirun of this repo — launch an N-rank TcpTransport world.
//
//   gtopkrun -n 4 -- ./quickstart --transport tcp
//   gtopkrun -n 8 --hostfile hosts.txt --rendezvous-port 29400 -- ./prog
//
// Spawns one process per rank and wires the bootstrap contract through the
// environment: GTOPK_RANK, GTOPK_WORLD_SIZE, GTOPK_RENDEZVOUS=host:port
// (comm::TcpTransport::config_from_env reads them). Without --hostfile all
// ranks run locally and the rendezvous defaults to a freshly probed
// loopback port. With --hostfile, ranks are assigned round-robin over the
// listed hosts; non-local ranks are started through `ssh <host> env ...`,
// and the rendezvous host defaults to the first entry (rank 0's host) so
// every peer can reach rank 0.
//
// Supervision: the launcher waits for all ranks; the first UNEXPECTED
// failure (non-zero exit or signal death) triggers a graceful teardown of
// the rest — SIGTERM first, then a --grace drain window for survivors to
// flush checkpoints and flight-recorder bundles, then SIGKILL for whatever
// is still standing. The first failing rank's identity and code are printed
// as one parseable diagnostic line ("gtopkrun: first failure: rank R code
// C") and the code becomes the launcher's own exit status. SIGINT/SIGTERM
// on the launcher start the same graceful teardown, so ^C drains rather
// than orphans.
//
// Chaos runs NEED some ranks to die: --victim R marks rank R as an expected
// casualty (its death is logged but never fails the run or tears the world
// down — the survivors are supposed to regroup around it), and
// --allow-exit C whitelists an exit code for every rank (e.g. 43, the
// typed rank-killed code of the test workers).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

namespace {

volatile sig_atomic_t g_signal = 0;

void on_signal(int sig) { g_signal = sig; }

int usage(const char* argv0) {
    std::cerr << "usage: " << argv0
              << " -n <ranks> [--hostfile <file>] [--rendezvous-host <host>]"
                 " [--rendezvous-port <port>] [--grace <seconds>]"
                 " [--victim <rank>]... [--allow-exit <code>]..."
                 " -- <program> [args...]\n";
    return 2;
}

/// Probe a free loopback TCP port: bind port 0, read the assignment back.
/// Small race against other processes grabbing it, fine for a launcher.
int probe_free_port() {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
        ::close(fd);
        return -1;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
        ::close(fd);
        return -1;
    }
    ::close(fd);
    return static_cast<int>(ntohs(addr.sin_port));
}

bool is_local_host(const std::string& host) {
    return host.empty() || host == "localhost" || host == "127.0.0.1" ||
           host == "::1";
}

struct Child {
    pid_t pid = -1;
    int rank = -1;
    bool running = true;
};

}  // namespace

int main(int argc, char** argv) {
    int world = 0;
    std::string hostfile;
    std::string rendezvous_host;
    int rendezvous_port = 0;
    int cmd_start = -1;
    double grace_s = 5.0;
    std::vector<int> victims;
    std::vector<int> allowed_codes;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "-n") == 0 && i + 1 < argc) {
            world = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--hostfile") == 0 && i + 1 < argc) {
            hostfile = argv[++i];
        } else if (std::strcmp(argv[i], "--rendezvous-host") == 0 && i + 1 < argc) {
            rendezvous_host = argv[++i];
        } else if (std::strcmp(argv[i], "--rendezvous-port") == 0 && i + 1 < argc) {
            rendezvous_port = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--grace") == 0 && i + 1 < argc) {
            grace_s = std::atof(argv[++i]);
        } else if (std::strcmp(argv[i], "--victim") == 0 && i + 1 < argc) {
            victims.push_back(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--allow-exit") == 0 && i + 1 < argc) {
            allowed_codes.push_back(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--") == 0) {
            cmd_start = i + 1;
            break;
        } else {
            return usage(argv[0]);
        }
    }
    if (world <= 0 || cmd_start < 0 || cmd_start >= argc) return usage(argv[0]);

    std::vector<std::string> hosts;
    if (!hostfile.empty()) {
        std::ifstream in(hostfile);
        if (!in) {
            std::cerr << "gtopkrun: cannot open hostfile " << hostfile << "\n";
            return 2;
        }
        std::string line;
        while (std::getline(in, line)) {
            // Trim and skip blanks/comments.
            const auto a = line.find_first_not_of(" \t\r");
            if (a == std::string::npos || line[a] == '#') continue;
            const auto b = line.find_last_not_of(" \t\r");
            hosts.push_back(line.substr(a, b - a + 1));
        }
        if (hosts.empty()) {
            std::cerr << "gtopkrun: hostfile has no hosts\n";
            return 2;
        }
    }

    if (rendezvous_port <= 0) rendezvous_port = probe_free_port();
    if (rendezvous_port <= 0) {
        std::cerr << "gtopkrun: could not probe a rendezvous port\n";
        return 1;
    }
    if (rendezvous_host.empty()) {
        // Rank 0's host is the rendezvous: first hostfile entry, else
        // loopback for an all-local run.
        rendezvous_host =
            (!hosts.empty() && !is_local_host(hosts[0])) ? hosts[0] : "127.0.0.1";
    }
    const std::string rendezvous =
        rendezvous_host + ":" + std::to_string(rendezvous_port);

    struct sigaction sa{};
    sa.sa_handler = on_signal;
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
    ::signal(SIGPIPE, SIG_IGN);

    std::vector<Child> children;
    children.reserve(static_cast<std::size_t>(world));
    for (int rank = 0; rank < world; ++rank) {
        const std::string host =
            hosts.empty() ? std::string()
                          : hosts[static_cast<std::size_t>(rank) % hosts.size()];
        const pid_t pid = ::fork();
        if (pid < 0) {
            std::cerr << "gtopkrun: fork failed: " << std::strerror(errno) << "\n";
            for (const Child& c : children) ::kill(c.pid, SIGTERM);
            return 1;
        }
        if (pid == 0) {
            // Child: export the bootstrap contract, then exec the program
            // (locally) or hand the whole thing to ssh (remote host).
            const std::string rank_s = std::to_string(rank);
            const std::string world_s = std::to_string(world);
            if (is_local_host(host)) {
                ::setenv("GTOPK_RANK", rank_s.c_str(), 1);
                ::setenv("GTOPK_WORLD_SIZE", world_s.c_str(), 1);
                ::setenv("GTOPK_RENDEZVOUS", rendezvous.c_str(), 1);
                ::execvp(argv[cmd_start], argv + cmd_start);
                std::cerr << "gtopkrun: exec " << argv[cmd_start]
                          << " failed: " << std::strerror(errno) << "\n";
            } else {
                // ssh <host> env GTOPK_RANK=r ... prog args...
                std::vector<std::string> remote;
                remote.emplace_back("ssh");
                remote.push_back(host);
                remote.emplace_back("env");
                remote.push_back("GTOPK_RANK=" + rank_s);
                remote.push_back("GTOPK_WORLD_SIZE=" + world_s);
                remote.push_back("GTOPK_RENDEZVOUS=" + rendezvous);
                for (int i = cmd_start; i < argc; ++i) remote.emplace_back(argv[i]);
                std::vector<char*> cargv;
                cargv.reserve(remote.size() + 1);
                for (std::string& s : remote) cargv.push_back(s.data());
                cargv.push_back(nullptr);
                ::execvp("ssh", cargv.data());
                std::cerr << "gtopkrun: exec ssh failed: " << std::strerror(errno)
                          << "\n";
            }
            ::_exit(127);
        }
        children.push_back(Child{pid, rank});
    }

    // Supervise: reap everyone; the first UNEXPECTED failure starts the
    // graceful teardown (SIGTERM, drain grace, then SIGKILL) but reaping
    // continues so no zombies outlive the launcher. Expected victims
    // (--victim) and whitelisted codes (--allow-exit) never trigger it.
    using Clock = std::chrono::steady_clock;
    int exit_code = 0;
    int first_fail_rank = -1;
    bool torn_down = false;
    bool hard_killed = false;
    Clock::time_point term_deadline{};
    std::size_t live = children.size();

    const auto begin_teardown = [&] {
        if (torn_down) return;
        torn_down = true;
        term_deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                           std::chrono::duration<double>(grace_s));
        for (const Child& c : children) {
            if (c.running) ::kill(c.pid, SIGTERM);
        }
    };

    while (live > 0) {
        if (g_signal != 0 && !torn_down) {
            if (exit_code == 0) exit_code = 128 + static_cast<int>(g_signal);
            begin_teardown();
        }
        if (torn_down && !hard_killed && Clock::now() >= term_deadline) {
            // Drain grace expired: whatever ignored SIGTERM is hung — a
            // stalled collective, a wedged reconnect — and gets no more time.
            hard_killed = true;
            for (const Child& c : children) {
                if (!c.running) continue;
                std::cerr << "gtopkrun: rank " << c.rank
                          << " did not drain within " << grace_s
                          << "s; killing\n";
                ::kill(c.pid, SIGKILL);
            }
        }
        int status = 0;
        // Non-blocking reaps while a teardown is draining, so the grace
        // deadline actually fires; blocking wait otherwise (signals break
        // it out via EINTR).
        const pid_t pid = ::waitpid(-1, &status, torn_down ? WNOHANG : 0);
        if (pid == 0) {
            ::usleep(20 * 1000);
            continue;
        }
        if (pid < 0) {
            if (errno == EINTR) continue;
            break;
        }
        int rank = -1;
        for (Child& c : children) {
            if (c.pid == pid) {
                rank = c.rank;
                c.running = false;
            }
        }
        --live;
        int code = 0;
        if (WIFEXITED(status)) {
            code = WEXITSTATUS(status);
        } else if (WIFSIGNALED(status)) {
            code = 128 + WTERMSIG(status);
            std::cerr << "gtopkrun: rank " << rank << " killed by signal "
                      << WTERMSIG(status) << "\n";
        }
        if (code == 0) continue;
        const bool expected =
            std::find(victims.begin(), victims.end(), rank) != victims.end() ||
            std::find(allowed_codes.begin(), allowed_codes.end(), code) !=
                allowed_codes.end();
        if (expected) {
            std::cerr << "gtopkrun: rank " << rank << " exited with " << code
                      << " (expected casualty); world continues\n";
            continue;
        }
        if (first_fail_rank < 0) {
            first_fail_rank = rank;
            exit_code = code;
            // The one parseable line scripts and CI grep for.
            std::cerr << "gtopkrun: first failure: rank " << rank << " code "
                      << code << "\n";
        }
        if (!torn_down) {
            std::cerr << "gtopkrun: terminating remaining ranks (grace "
                      << grace_s << "s)\n";
            begin_teardown();
        }
    }
    return exit_code;
}
