// protocheck — exhaustive protocol model checker for the control plane.
//
// Explores every reachable state of small-world instances of the ARQ
// (ReliableTransport), membership/epoch (MembershipService) and
// reconnect/session-resume (TcpTransport link recovery) protocols under an
// adversarial network, checking safety invariants on every state and
// liveness under fairness over the full graph. The models execute the SAME
// fsm::* transition functions the production code executes
// (src/comm/reliable_fsm.*, src/comm/membership_fsm.*,
// src/comm/reconnect_fsm.*), so a clean sweep certifies the code paths
// themselves, not a parallel reimplementation — and --seed-break flips a
// deliberate protocol bug that must surface as a counterexample AND (for
// arq/membership) reproduce through the real stack (--replay).
//
// Usage:
//   protocheck --proto arq|epoch|membership|reconnect|all [--world 2..4]
//              [--max-msgs N] [--dup-budget N] [--corrupt-budget N]
//              [--kills N] [--joins N] [--losses N] [--attempts N]
//              [--max-states N] [--no-symmetry]
//              [--seed-break none|quorum|gc-unacked|accept-dup|accept-stale]
//              [--replay] [--replay-sample N] [--seed S]
//              [--report out.json] [-v]
//
// Exit code 0:
//   * without --seed-break: every requested sweep finished exhaustively
//     with zero violations (and --replay/--replay-sample agreed);
//   * with --seed-break: the sweep DID find a counterexample for the
//     seeded bug, and (with --replay) the trace reproduced the failure
//     through the real transport/service.
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/protocheck/arq_model.hpp"
#include "analysis/protocheck/explorer.hpp"
#include "analysis/protocheck/membership_model.hpp"
#include "analysis/protocheck/reconnect_model.hpp"
#include "analysis/protocheck/replay.hpp"
#include "comm/membership_fsm.hpp"
#include "comm/reconnect_fsm.hpp"
#include "comm/reliable_fsm.hpp"

namespace pc = gtopk::analysis::protocheck;
namespace fsm = gtopk::comm::fsm;

namespace {

struct Options {
    std::string proto = "all";
    int world_lo = 2;
    int world_hi = 4;
    int max_msgs = 3;
    int dup_budget = 1;
    int corrupt_budget = 1;
    int kills = 1;
    int joins = 2;
    int losses = 1;
    int attempts = 3;
    std::uint64_t max_states = 2'000'000;
    bool symmetry = true;
    std::string seed_break = "none";
    bool replay = false;
    int replay_sample = 0;
    std::uint64_t seed = 1;
    std::string report_path;
    bool verbose = false;
};

[[noreturn]] void usage_error(const std::string& msg) {
    std::cerr << "protocheck: " << msg << "\n";
    std::exit(2);
}

bool parse_world_range(const std::string& s, int& lo, int& hi) {
    const auto dots = s.find("..");
    try {
        if (dots == std::string::npos) {
            lo = hi = std::stoi(s);
        } else {
            lo = std::stoi(s.substr(0, dots));
            hi = std::stoi(s.substr(dots + 2));
        }
    } catch (...) {
        return false;
    }
    return lo >= 2 && hi >= lo && hi <= 4;
}

Options parse_args(int argc, char** argv) {
    Options o;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto need_value = [&]() -> std::string {
            if (i + 1 >= argc) usage_error("missing value for " + arg);
            return argv[++i];
        };
        if (arg == "--proto") {
            o.proto = need_value();
            if (o.proto != "arq" && o.proto != "epoch" &&
                o.proto != "membership" && o.proto != "reconnect" &&
                o.proto != "all") {
                usage_error("unknown --proto " + o.proto);
            }
        } else if (arg == "--world") {
            if (!parse_world_range(need_value(), o.world_lo, o.world_hi)) {
                usage_error("--world wants N or N..M within 2..4");
            }
        } else if (arg == "--max-msgs") {
            o.max_msgs = std::stoi(need_value());
        } else if (arg == "--dup-budget") {
            o.dup_budget = std::stoi(need_value());
        } else if (arg == "--corrupt-budget") {
            o.corrupt_budget = std::stoi(need_value());
        } else if (arg == "--kills") {
            o.kills = std::stoi(need_value());
        } else if (arg == "--joins") {
            o.joins = std::stoi(need_value());
        } else if (arg == "--losses") {
            o.losses = std::stoi(need_value());
        } else if (arg == "--attempts") {
            o.attempts = std::stoi(need_value());
        } else if (arg == "--max-states") {
            o.max_states = std::stoull(need_value());
        } else if (arg == "--no-symmetry") {
            o.symmetry = false;
        } else if (arg == "--seed-break") {
            o.seed_break = need_value();
            if (o.seed_break != "none" && o.seed_break != "quorum" &&
                o.seed_break != "gc-unacked" && o.seed_break != "accept-dup" &&
                o.seed_break != "accept-stale") {
                usage_error("unknown --seed-break " + o.seed_break);
            }
        } else if (arg == "--replay") {
            o.replay = true;
        } else if (arg == "--replay-sample") {
            o.replay_sample = std::stoi(need_value());
        } else if (arg == "--seed") {
            o.seed = std::stoull(need_value());
        } else if (arg == "--report") {
            o.report_path = need_value();
        } else if (arg == "-v" || arg == "--verbose") {
            o.verbose = true;
        } else {
            usage_error("unknown argument " + arg);
        }
    }
    return o;
}

std::string json_escape(const std::string& s) {
    std::string out;
    for (const char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (c == '\n') {
            out += "\\n";
        } else {
            out += c;
        }
    }
    return out;
}

/// One sweep's outcome, protocol-agnostic, for the JSON report.
struct SweepResult {
    std::string name;
    std::uint64_t states = 0;
    std::uint64_t transitions = 0;
    std::uint64_t max_depth = 0;
    bool truncated = false;
    std::string violation;           // empty = clean
    std::vector<std::string> trace;  // counterexample labels
    std::string replay;              // "ok", "reproduced", divergence text
};

template <typename Model>
SweepResult run_sweep(const std::string& name, const Model& model,
                      std::uint64_t max_states,
                      std::vector<typename Model::Action>* trace_out) {
    pc::ExploreLimits limits;
    limits.max_states = max_states;
    const pc::CheckReport<Model> report = pc::explore(model, limits);
    SweepResult r;
    r.name = name;
    r.states = report.states;
    r.transitions = report.transitions;
    r.max_depth = report.max_depth;
    r.truncated = report.truncated;
    if (report.violation) r.violation = *report.violation;
    for (const auto& step : report.trace) {
        r.trace.push_back(step.label);
        if (trace_out) trace_out->push_back(step.action);
    }
    return r;
}

void print_result(const SweepResult& r, bool verbose) {
    std::cout << r.name << ": " << r.states << " states, " << r.transitions
              << " transitions, depth " << r.max_depth;
    if (r.truncated) std::cout << " [TRUNCATED at state cap]";
    if (r.violation.empty()) {
        std::cout << " — clean\n";
    } else {
        std::cout << " — VIOLATION: " << r.violation << "\n";
        std::cout << "  counterexample (" << r.trace.size() << " steps):\n";
        for (const auto& label : r.trace) std::cout << "    " << label << "\n";
    }
    if (!r.replay.empty()) std::cout << "  replay: " << r.replay << "\n";
    if (verbose && r.violation.empty()) {
        std::cout << "  (liveness: every reachable state has a fair path to "
                     "a goal state)\n";
    }
}

void write_report(const std::string& path,
                  const std::vector<SweepResult>& results) {
    std::ostringstream os;
    os << "{\n  \"sweeps\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const SweepResult& r = results[i];
        os << "    {\"name\": \"" << json_escape(r.name) << "\", \"states\": "
           << r.states << ", \"transitions\": " << r.transitions
           << ", \"max_depth\": " << r.max_depth << ", \"truncated\": "
           << (r.truncated ? "true" : "false") << ", \"violation\": \""
           << json_escape(r.violation) << "\", \"replay\": \""
           << json_escape(r.replay) << "\", \"trace\": [";
        for (std::size_t t = 0; t < r.trace.size(); ++t) {
            if (t) os << ", ";
            os << "\"" << json_escape(r.trace[t]) << "\"";
        }
        os << "]}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    std::ofstream f(path);
    f << os.str();
}

}  // namespace

int main(int argc, char** argv) {
    const Options o = parse_args(argc, argv);

    if (o.seed_break == "quorum") {
        fsm::set_membership_break(fsm::MembershipBreak::kQuorumBypass);
    } else if (o.seed_break == "gc-unacked") {
        fsm::set_arq_break(fsm::ArqBreak::kGcDropsUnacked);
    } else if (o.seed_break == "accept-dup") {
        fsm::set_arq_break(fsm::ArqBreak::kAcceptDuplicates);
    } else if (o.seed_break == "accept-stale") {
        fsm::set_reconnect_break(fsm::ReconnectBreak::kAcceptStale);
    }
    const bool expect_violation = o.seed_break != "none";

    std::vector<SweepResult> results;
    bool found_violation = false;
    bool replay_ok = true;
    bool truncated = false;

    const bool run_arq = o.proto == "arq" || o.proto == "all";
    const bool run_epoch = o.proto == "epoch" || o.proto == "all";
    const bool run_membership = o.proto == "membership" || o.proto == "all";
    const bool run_reconnect = o.proto == "reconnect" || o.proto == "all";

    std::vector<int> bump_variants;  // 0 = plain arq, 1 = epoch-bump sweep
    if (run_arq) bump_variants.push_back(0);
    if (run_epoch) bump_variants.push_back(1);
    for (const int bumps : bump_variants) {
        pc::ArqModelConfig cfg;
        cfg.max_msgs = o.max_msgs;
        cfg.dup_budget = o.dup_budget;
        cfg.corrupt_budget = o.corrupt_budget;
        cfg.allow_drop = true;
        cfg.allow_kill = true;
        cfg.max_epoch_bumps = bumps;
        const pc::ArqModel model(cfg);
        std::vector<pc::ArqModel::Action> trace;
        const std::string name = std::string(bumps > 0 ? "epoch" : "arq") +
                                 "(msgs=" + std::to_string(cfg.max_msgs) +
                                 ",dup=" + std::to_string(cfg.dup_budget) +
                                 ",corrupt=" + std::to_string(cfg.corrupt_budget) +
                                 ",bumps=" + std::to_string(cfg.max_epoch_bumps) +
                                 ")";
        SweepResult r = run_sweep(name, model, o.max_states, &trace);
        found_violation |= !r.violation.empty();
        truncated |= r.truncated;
        if (!r.violation.empty() && o.replay) {
            // The counterexample must reproduce through the REAL transport:
            // the model predicts the anomaly, the replay must exhibit it.
            const pc::ArqModelOutcome sim = pc::simulate_arq_trace(cfg, trace);
            const pc::ArqReplayResult real = pc::replay_arq_trace(cfg, trace);
            bool reproduced = false;
            if (r.violation == "out-of-order-delivery") {
                // Real anomaly: the app saw a non-increasing seq.
                for (std::size_t i = 1; i < real.delivered.size(); ++i) {
                    reproduced |= real.delivered[i] <= real.delivered[i - 1];
                }
            } else if (r.violation == "gc-dropped-unacked") {
                // Real anomaly: a sent seq is unrecoverable — fewer
                // deliveries than the unbroken protocol guarantees.
                reproduced = real.delivered.size() < sim.predicted.delivered.size() ||
                             real.retransmits < sim.predicted.retransmits;
                // Conservative fallback: the trace ends mid-protocol; the
                // direct signature is agreement with the broken model.
                reproduced |= real.delivered == sim.predicted.delivered;
            }
            r.replay = reproduced ? "reproduced through ReliableTransport"
                                  : "FAILED to reproduce";
            replay_ok &= reproduced;
        } else if (r.violation.empty() && o.replay_sample > 0) {
            pc::ArqModelConfig clean = cfg;
            if (auto d = pc::arq_random_conformance(clean, o.replay_sample, 40,
                                                    o.seed)) {
                r.replay = "conformance divergence: " + *d;
                replay_ok = false;
            } else {
                r.replay = std::to_string(o.replay_sample) +
                           " random traces conform";
            }
        }
        print_result(r, o.verbose);
        results.push_back(std::move(r));
    }

    if (run_membership) {
        for (int world = o.world_lo; world <= o.world_hi; ++world) {
            pc::MembershipModelConfig cfg;
            cfg.world = world;
            cfg.max_kills = std::min(o.kills, world - 1);
            cfg.joins_per_rank = o.joins;
            cfg.symmetry_reduction = o.symmetry;
            const pc::MembershipModel model(cfg);
            std::vector<pc::MembershipModel::Action> trace;
            const std::string name =
                "membership(world=" + std::to_string(world) +
                ",kills=" + std::to_string(cfg.max_kills) +
                ",joins=" + std::to_string(cfg.joins_per_rank) +
                (cfg.symmetry_reduction ? "" : ",no-symmetry") + ")";
            SweepResult r = run_sweep(name, model, o.max_states, &trace);
            found_violation |= !r.violation.empty();
            truncated |= r.truncated;
            if (!r.violation.empty() && o.replay) {
                // A quorum counterexample must reproduce as a REAL minority
                // view finalized by MembershipService (same seeded break).
                if (auto d = pc::membership_conformance_diff(cfg, trace)) {
                    r.replay = "FAILED to reproduce: " + *d;
                    replay_ok = false;
                } else {
                    r.replay = "reproduced through MembershipService";
                }
            }
            const bool violated = !r.violation.empty();
            print_result(r, o.verbose);
            results.push_back(std::move(r));
            if (violated) break;  // one counterexample suffices
        }
    }

    if (run_reconnect) {
        for (int losses = 1; losses <= std::max(1, o.losses); ++losses) {
            pc::ReconnectModelConfig cfg;
            cfg.max_losses = losses;
            cfg.max_attempts = static_cast<std::uint64_t>(o.attempts);
            const pc::ReconnectModel model(cfg);
            const std::string name =
                "reconnect(losses=" + std::to_string(losses) +
                ",attempts=" + std::to_string(o.attempts) + ")";
            SweepResult r = run_sweep<pc::ReconnectModel>(name, model,
                                                          o.max_states, nullptr);
            const bool violated = !r.violation.empty();
            found_violation |= violated;
            truncated |= r.truncated;
            print_result(r, o.verbose);
            results.push_back(std::move(r));
            if (violated) break;  // one counterexample suffices
        }
    }

    if (!o.report_path.empty()) write_report(o.report_path, results);

    fsm::set_arq_break(fsm::ArqBreak::kNone);
    fsm::set_membership_break(fsm::MembershipBreak::kNone);
    fsm::set_reconnect_break(fsm::ReconnectBreak::kNone);

    if (truncated) {
        std::cerr << "protocheck: sweep truncated — raise --max-states\n";
        return 3;
    }
    if (expect_violation) {
        if (!found_violation) {
            std::cerr << "protocheck: seeded break produced NO counterexample\n";
            return 1;
        }
        if (o.replay && !replay_ok) {
            std::cerr << "protocheck: counterexample did not reproduce\n";
            return 1;
        }
        return 0;
    }
    if (found_violation || !replay_ok) return 1;
    return 0;
}
