// gtopktop — terminal dashboard over the cluster telemetry plane.
//
//   gtopktop <telemetry.jsonl> [--json] [--last N]
//   gtopktop <flight_bundle.json> [--json]
//   gtopktop bench-compare <baseline.json> <current.json> [--max-regress PCT]
//
// The first form digests the per-iteration JSONL stream written by
// Telemetry (one line per global IterSnapshot): overall phase breakdown,
// measured-vs-predicted communication cost, and a per-rank table over the
// last N steps that makes stragglers and wire asymmetry visible. Replayed
// steps (elastic rollback) are handled last-wins, so the dashboard shows
// the surviving timeline. The second form (auto-detected by the
// "flight_recorder" key) summarizes a postmortem bundle: what happened,
// to whom, in what order. The third compares two bench_hotpath reports and
// flags per-phase regressions; with --max-regress it exits non-zero when
// any phase slowed down by more than PCT percent (CI keeps this step
// non-gating by omitting the flag).
#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace {

using gtopk::util::JsonError;
using gtopk::util::JsonValue;

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

struct RankAgg {
    double compute_s = 0, select_s = 0, comm_s = 0, update_s = 0;
    std::int64_t bytes_out = 0, msgs_out = 0;
    std::int64_t nnz_last = -1, mailbox_max = 0;
    std::int64_t faults_last = 0, retransmits_last = 0;
    std::int64_t samples = 0;
};

int run_telemetry(const std::string& path, bool as_json, std::int64_t last_n) {
    std::ifstream in(path);
    if (!in) {
        std::cerr << "gtopktop: cannot open " << path << "\n";
        return 1;
    }

    // Last-wins per step: a rollback replays steps and the replay is the
    // timeline that survived.
    std::map<std::int64_t, JsonValue> by_step;
    std::string line;
    std::size_t lineno = 0, bad = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
        try {
            JsonValue v = JsonValue::parse(line);
            by_step[static_cast<std::int64_t>(v.number_or("step", -1))] =
                std::move(v);
        } catch (const JsonError& e) {
            ++bad;
            std::cerr << "gtopktop: skipping line " << lineno << ": " << e.what()
                      << "\n";
        }
    }
    if (by_step.empty()) {
        std::cerr << "gtopktop: no telemetry records in " << path << "\n";
        return 1;
    }

    // Global aggregates over the surviving timeline.
    double compute = 0, select = 0, comm = 0, update = 0;
    double measured = 0, predicted = 0;
    std::int64_t predicted_n = 0, steps = 0, total_bytes = 0;
    std::map<int, RankAgg> ranks;  // keyed by physical rank
    int first_world = 0, last_world = 0, last_epoch = 0;
    std::string proto;
    const std::int64_t cutoff =
        last_n > 0 && static_cast<std::int64_t>(by_step.size()) > last_n
            ? std::prev(by_step.end(), last_n)->first
            : by_step.begin()->first;
    for (const auto& [step, v] : by_step) {
        ++steps;
        const int world = static_cast<int>(v.number_or("world", 0));
        if (first_world == 0) first_world = world;
        last_world = world;
        last_epoch = static_cast<int>(v.number_or("epoch", 0));
        if (const JsonValue* p = v.find("proto")) proto = p->as_string();
        if (const JsonValue* p = v.find("predicted_comm_s")) {
            predicted += p->as_number();
            ++predicted_n;
        }
        const JsonValue* rank_arr = v.find("ranks");
        if (!rank_arr || !rank_arr->is_array()) {
            measured += v.number_or("measured_comm_s", 0.0);
            continue;
        }
        double step_comm = 0;
        for (const JsonValue& r : rank_arr->as_array()) {
            compute += r.number_or("compute_s", 0);
            select += r.number_or("select_s", 0);
            step_comm = std::max(step_comm, r.number_or("comm_s", 0));
            update += r.number_or("update_s", 0);
            total_bytes += static_cast<std::int64_t>(r.number_or("bytes_out", 0));
            if (step < cutoff) continue;
            RankAgg& a = ranks[static_cast<int>(r.number_or("rank", -1))];
            a.compute_s += r.number_or("compute_s", 0);
            a.select_s += r.number_or("select_s", 0);
            a.comm_s += r.number_or("comm_s", 0);
            a.update_s += r.number_or("update_s", 0);
            a.bytes_out += static_cast<std::int64_t>(r.number_or("bytes_out", 0));
            a.msgs_out += static_cast<std::int64_t>(r.number_or("msgs_out", 0));
            a.nnz_last = static_cast<std::int64_t>(r.number_or("nnz", -1));
            a.mailbox_max = std::max(
                a.mailbox_max, static_cast<std::int64_t>(r.number_or("mailbox", 0)));
            a.faults_last =
                static_cast<std::int64_t>(r.number_or("faults", 0));
            a.retransmits_last =
                static_cast<std::int64_t>(r.number_or("retransmits", 0));
            ++a.samples;
        }
        comm += step_comm;
        // Predictions are schedule critical paths, so the comparable
        // measurement is the slowest rank, not the JSONL's rank mean.
        measured += step_comm;
    }
    const double per_rank_steps =
        steps > 0 && first_world > 0 ? static_cast<double>(steps) : 1.0;

    if (as_json) {
        std::cout << "{\"steps\":" << steps << ",\"world_first\":" << first_world
                  << ",\"world_last\":" << last_world
                  << ",\"epoch_last\":" << last_epoch << ",\"proto\":\"" << proto
                  << "\",\"bad_lines\":" << bad
                  << ",\"mean_comm_s\":" << (steps ? comm / steps : 0)
                  << ",\"measured_comm_s\":" << measured
                  << ",\"predicted_comm_s\":" << predicted
                  << ",\"predicted_steps\":" << predicted_n
                  << ",\"total_bytes\":" << total_bytes << ",\"ranks\":[";
        bool first = true;
        for (const auto& [pr, a] : ranks) {
            if (!first) std::cout << ",";
            first = false;
            const double n = a.samples ? static_cast<double>(a.samples) : 1.0;
            std::cout << "{\"rank\":" << pr << ",\"mean_compute_s\":"
                      << a.compute_s / n << ",\"mean_comm_s\":" << a.comm_s / n
                      << ",\"bytes_out\":" << a.bytes_out
                      << ",\"mailbox_max\":" << a.mailbox_max
                      << ",\"faults\":" << a.faults_last
                      << ",\"retransmits\":" << a.retransmits_last << "}";
        }
        std::cout << "]}\n";
        return 0;
    }

    std::cout << "telemetry: " << path << "\n"
              << "  steps " << steps << "  world " << first_world;
    if (last_world != first_world) {
        std::cout << " -> " << last_world << " (regrouped)";
    }
    std::cout << "  membership epoch " << last_epoch;
    if (!proto.empty()) std::cout << "  proto " << proto;
    if (bad) std::cout << "  (skipped " << bad << " bad line(s))";
    std::cout << "\n\nphase means per iteration (all ranks):\n";
    const double denom =
        per_rank_steps * (first_world > 0 ? first_world : 1);
    std::cout << "  compute " << compute / denom * 1e3 << " ms   select "
              << select / denom * 1e3 << " ms   comm(virtual, slowest rank) "
              << comm / per_rank_steps * 1e3 << " ms   update "
              << update / denom * 1e3 << " ms\n"
              << "  aggregation wire bytes total " << total_bytes << "\n";
    if (predicted_n > 0) {
        const double mean_meas = measured / steps;
        const double mean_pred = predicted / predicted_n;
        std::cout << "\ncost model (alpha-beta): measured mean "
                  << mean_meas * 1e3 << " ms, predicted " << mean_pred * 1e3
                  << " ms";
        if (mean_pred > 0) std::cout << ", ratio " << mean_meas / mean_pred;
        std::cout << "  [" << predicted_n << "/" << steps << " steps priced]\n";
    }
    std::cout << "\nper-rank (last " << ranks.begin()->second.samples
              << " step(s)): rank  compute-ms  comm-ms  bytes-out  mailbox  "
                 "faults  retransmits\n";
    for (const auto& [pr, a] : ranks) {
        const double n = a.samples ? static_cast<double>(a.samples) : 1.0;
        std::cout << "  rank " << pr << "   " << a.compute_s / n * 1e3 << "  "
                  << a.comm_s / n * 1e3 << "  " << a.bytes_out << "  "
                  << a.mailbox_max << "  " << a.faults_last << "  "
                  << a.retransmits_last;
        if (a.nnz_last >= 0) std::cout << "  (nnz " << a.nnz_last << ")";
        std::cout << "\n";
    }
    return 0;
}

int run_flight(const JsonValue& root, bool as_json) {
    const JsonValue* fr = root.find("flight_recorder");
    const JsonValue* events = fr->find("events");
    const JsonValue* membership = fr->find("membership");
    const JsonValue* snapshots = fr->find("snapshots");
    std::map<std::string, int> by_kind;
    if (events && events->is_array()) {
        for (const JsonValue& e : events->as_array()) {
            if (const JsonValue* k = e.find("kind")) ++by_kind[k->as_string()];
        }
    }
    int snap_n = 0, world_first = 0, world_last = 0;
    if (snapshots && snapshots->is_array() && !snapshots->as_array().empty()) {
        const auto& arr = snapshots->as_array();
        snap_n = static_cast<int>(arr.size());
        world_first = static_cast<int>(arr.front().number_or("world", 0));
        world_last = static_cast<int>(arr.back().number_or("world", 0));
    }
    const std::string reason =
        fr->find("reason") ? fr->find("reason")->as_string() : "?";

    if (as_json) {
        std::cout << "{\"reason\":\"" << reason << "\",\"events\":{";
        bool first = true;
        for (const auto& [k, n] : by_kind) {
            if (!first) std::cout << ",";
            first = false;
            std::cout << "\"" << k << "\":" << n;
        }
        std::cout << "},\"snapshots\":" << snap_n
                  << ",\"world_first\":" << world_first
                  << ",\"world_last\":" << world_last << ",\"membership\":[";
        first = true;
        if (membership && membership->is_array()) {
            std::map<int, int> epochs;  // epoch -> world size (dedup reporters)
            for (const JsonValue& m : membership->as_array()) {
                const JsonValue* mem = m.find("members");
                epochs[static_cast<int>(m.number_or("epoch", 0))] =
                    mem && mem->is_array()
                        ? static_cast<int>(mem->as_array().size())
                        : 0;
            }
            for (const auto& [ep, w] : epochs) {
                if (!first) std::cout << ",";
                first = false;
                std::cout << "{\"epoch\":" << ep << ",\"world\":" << w << "}";
            }
        }
        std::cout << "]}\n";
        return 0;
    }

    std::cout << "flight recorder bundle (reason: " << reason << ")\n\nevents:\n";
    for (const auto& [k, n] : by_kind) {
        std::cout << "  " << k << " x" << n << "\n";
    }
    if (events && events->is_array()) {
        std::cout << "\ntimeline:\n";
        for (const JsonValue& e : events->as_array()) {
            std::cout << "  t=" << e.number_or("t_s", 0) << "s  rank "
                      << static_cast<int>(e.number_or("rank", -1)) << "  step "
                      << static_cast<std::int64_t>(e.number_or("step", -1))
                      << "  "
                      << (e.find("kind") ? e.find("kind")->as_string() : "?");
            if (const JsonValue* d = e.find("detail")) {
                if (!d->as_string().empty()) std::cout << " — " << d->as_string();
            }
            std::cout << "\n";
        }
    }
    if (membership && membership->is_array() && !membership->as_array().empty()) {
        std::cout << "\nmembership:\n";
        for (const JsonValue& m : membership->as_array()) {
            std::cout << "  epoch "
                      << static_cast<int>(m.number_or("epoch", 0)) << ": [";
            const JsonValue* mem = m.find("members");
            if (mem && mem->is_array()) {
                bool first = true;
                for (const JsonValue& r : mem->as_array()) {
                    if (!first) std::cout << " ";
                    first = false;
                    std::cout << static_cast<int>(r.as_number());
                }
            }
            std::cout << "]  (reporter rank "
                      << static_cast<int>(m.number_or("reporter", -1)) << ")\n";
        }
    }
    std::cout << "\nsnapshots: " << snap_n;
    if (snap_n > 0) {
        std::cout << "  world " << world_first;
        if (world_last != world_first) std::cout << " -> " << world_last;
    }
    std::cout << "\n";
    return 0;
}

int run_bench_compare(const std::string& base_path, const std::string& cur_path,
                      double max_regress_pct) {
    const JsonValue base = JsonValue::parse(read_file(base_path));
    const JsonValue cur = JsonValue::parse(read_file(cur_path));
    const JsonValue* bp = base.find("phases");
    const JsonValue* cp = cur.find("phases");
    if (!bp || !bp->is_object() || !cp || !cp->is_object()) {
        std::cerr << "gtopktop: bench reports lack a \"phases\" object\n";
        return 1;
    }
    std::cout << "bench compare: " << cur_path << " vs baseline " << base_path
              << "\nphase                 baseline-s   current-s    delta\n";
    double worst = 0.0;
    std::string worst_phase;
    for (const auto& [name, b] : bp->as_object()) {
        const JsonValue* c = cp->find(name);
        if (!c) {
            std::cout << "  " << name << "  (missing from current)\n";
            continue;
        }
        const double bs = b.number_or("optimized_s", 0.0);
        const double cs = c->number_or("optimized_s", 0.0);
        const double pct = bs > 0 ? (cs - bs) / bs * 100.0 : 0.0;
        std::cout << "  " << name << "  " << bs << "  " << cs << "  "
                  << (pct >= 0 ? "+" : "") << pct << "%\n";
        if (pct > worst) {
            worst = pct;
            worst_phase = name;
        }
    }
    if (!worst_phase.empty()) {
        std::cout << "worst regression: " << worst_phase << " +" << worst
                  << "%\n";
    }
    if (max_regress_pct > 0 && worst > max_regress_pct) {
        std::cerr << "gtopktop: regression exceeds --max-regress "
                  << max_regress_pct << "%\n";
        return 1;
    }
    return 0;
}

void usage(const char* argv0) {
    std::cerr << "usage: " << argv0
              << " <telemetry.jsonl | flight_bundle.json> [--json] [--last N]\n"
              << "       " << argv0
              << " bench-compare <baseline.json> <current.json>"
                 " [--max-regress PCT]\n";
}

}  // namespace

int main(int argc, char** argv) {
    try {
        if (argc >= 2 && std::strcmp(argv[1], "bench-compare") == 0) {
            if (argc < 4) {
                usage(argv[0]);
                return 2;
            }
            double max_regress = 0.0;
            for (int i = 4; i < argc; ++i) {
                if (std::strcmp(argv[i], "--max-regress") == 0 && i + 1 < argc) {
                    max_regress = std::stod(argv[++i]);
                } else {
                    usage(argv[0]);
                    return 2;
                }
            }
            return run_bench_compare(argv[2], argv[3], max_regress);
        }

        std::string path;
        bool as_json = false;
        std::int64_t last_n = 32;
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--json") == 0) {
                as_json = true;
            } else if (std::strcmp(argv[i], "--last") == 0 && i + 1 < argc) {
                last_n = std::stoll(argv[++i]);
            } else if (argv[i][0] == '-') {
                usage(argv[0]);
                return 2;
            } else if (path.empty()) {
                path = argv[i];
            } else {
                usage(argv[0]);
                return 2;
            }
        }
        if (path.empty()) {
            usage(argv[0]);
            return 2;
        }

        // A flight bundle is one JSON document with a flight_recorder key;
        // anything else is treated as a telemetry JSONL stream.
        const std::string text = read_file(path);
        try {
            const JsonValue doc = JsonValue::parse(text);
            if (doc.find("flight_recorder")) return run_flight(doc, as_json);
        } catch (const JsonError&) {
            // Multi-line JSONL fails the single-document parse; fall through.
        }
        return run_telemetry(path, as_json, last_n);
    } catch (const std::exception& e) {
        std::cerr << "gtopktop: " << e.what() << "\n";
        return 1;
    }
}
