// taglint — static lint forbidding raw integer literals in tag positions.
//
// Every message tag in the codebase must come from the named constants and
// banded allocators in src/comm/tags.hpp (kTagHeartbeat, kTagReliableData,
// fresh/async band math, kAnyTag). A bare `42` handed to receive() or a
// `.tag = 7` in product code silently collides with the band layout the
// moment someone reorders constants — the exact class of bug the tag-band
// design exists to prevent. This tool walks the C++ sources, strips
// comments and string literals, and flags:
//
//   * designated initializers `.tag = <integer literal>`
//   * integer literals in the tag argument slot of the transport/mailbox
//     matching calls: receive / try_receive / receive_for /
//     receive_for_virtual (3rd arg), pop / try_pop / pop_for /
//     pop_for_virtual (2nd arg), count_tag_at_least (1st arg),
//     pending_with_tag_at_least (2nd arg)
//
// tags.hpp itself (the single place literals are legal) and tests/ (which
// deliberately exercise raw tags against the banded API) stay in scope —
// ONLY tags.hpp is exempt. Exit 1 with file:line diagnostics on findings.
#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

/// Replace comments and string/char literals with spaces (newlines kept so
/// line numbers survive).
std::string strip_noise(const std::string& src) {
    std::string out = src;
    enum class Mode { kCode, kLine, kBlock, kString, kChar } mode = Mode::kCode;
    for (std::size_t i = 0; i < out.size(); ++i) {
        const char c = out[i];
        const char next = i + 1 < out.size() ? out[i + 1] : '\0';
        switch (mode) {
            case Mode::kCode:
                if (c == '/' && next == '/') {
                    mode = Mode::kLine;
                    out[i] = ' ';
                } else if (c == '/' && next == '*') {
                    mode = Mode::kBlock;
                    out[i] = ' ';
                } else if (c == '"') {
                    mode = Mode::kString;
                    out[i] = ' ';
                } else if (c == '\'') {
                    mode = Mode::kChar;
                    out[i] = ' ';
                }
                break;
            case Mode::kLine:
                if (c == '\n') {
                    mode = Mode::kCode;
                } else {
                    out[i] = ' ';
                }
                break;
            case Mode::kBlock:
                if (c == '*' && next == '/') {
                    out[i] = ' ';
                    out[i + 1] = ' ';
                    ++i;
                    mode = Mode::kCode;
                } else if (c != '\n') {
                    out[i] = ' ';
                }
                break;
            case Mode::kString:
                if (c == '\\') {
                    out[i] = ' ';
                    if (next != '\n') {
                        out[i + 1] = ' ';
                        ++i;
                    }
                } else if (c == '"') {
                    mode = Mode::kCode;
                    out[i] = ' ';
                } else if (c != '\n') {
                    out[i] = ' ';
                }
                break;
            case Mode::kChar:
                if (c == '\\') {
                    out[i] = ' ';
                    if (next != '\n') {
                        out[i + 1] = ' ';
                        ++i;
                    }
                } else if (c == '\'') {
                    mode = Mode::kCode;
                    out[i] = ' ';
                } else if (c != '\n') {
                    out[i] = ' ';
                }
                break;
        }
    }
    return out;
}

bool is_ident(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// True when the token starting at `pos` is a bare integer literal
/// (optionally signed). Number-like identifiers (k401) don't match.
bool is_int_literal(const std::string& s, std::size_t pos) {
    if (pos >= s.size()) return false;
    if (s[pos] == '-' || s[pos] == '+') ++pos;
    if (pos >= s.size() || !std::isdigit(static_cast<unsigned char>(s[pos]))) {
        return false;
    }
    return true;
}

std::size_t line_of(const std::string& s, std::size_t pos) {
    return 1 + static_cast<std::size_t>(
                   std::count(s.begin(), s.begin() + static_cast<long>(pos), '\n'));
}

/// Split a call's argument text (between matched parens starting right
/// after `open`) into top-level comma-separated pieces. Returns false when
/// the parens never close (macro soup) — skip such calls.
bool split_args(const std::string& s, std::size_t open,
                std::vector<std::string>* args, std::size_t* close) {
    int depth = 1;
    std::string cur;
    for (std::size_t i = open + 1; i < s.size(); ++i) {
        const char c = s[i];
        if (c == '(' || c == '[' || c == '{') ++depth;
        if (c == ')' || c == ']' || c == '}') {
            --depth;
            if (depth == 0) {
                args->push_back(cur);
                *close = i;
                return true;
            }
        }
        if (c == ',' && depth == 1) {
            args->push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    return false;
}

std::string trim(const std::string& s) {
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
    return s.substr(b, e - b);
}

struct TagCall {
    const char* name;
    std::size_t tag_arg;  // 0-based index of the tag parameter
};

// Matching functions whose tag slot must never see a raw literal. The arg
// positions track the Transport/Mailbox signatures (receive(rank, source,
// tag), pop(source, tag), ...).
constexpr TagCall kTagCalls[] = {
    {"receive", 2},          {"try_receive", 2},
    {"receive_for", 2},      {"receive_for_virtual", 2},
    {"pop", 1},              {"try_pop", 1},
    {"pop_for", 1},          {"pop_for_virtual", 1},
    {"count_tag_at_least", 0},
    {"pending_with_tag_at_least", 1},
};

int scan_file(const fs::path& path, std::vector<std::string>* findings) {
    std::ifstream f(path);
    if (!f) return 0;
    std::stringstream buf;
    buf << f.rdbuf();
    const std::string code = strip_noise(buf.str());
    int count = 0;

    // Designated initializer: `.tag = <literal>` (also matches the
    // assignment form `x.tag = 7`, equally illegal outside tags.hpp).
    for (std::size_t i = 0; i + 4 < code.size(); ++i) {
        if (code.compare(i, 4, ".tag") != 0) continue;
        if (i > 0 && is_ident(code[i - 1])) continue;
        std::size_t j = i + 4;
        while (j < code.size() && std::isspace(static_cast<unsigned char>(code[j]))) {
            ++j;
        }
        if (j >= code.size() || code[j] != '=') continue;
        if (j + 1 < code.size() && code[j + 1] == '=') continue;  // comparison
        ++j;
        while (j < code.size() && std::isspace(static_cast<unsigned char>(code[j]))) {
            ++j;
        }
        if (is_int_literal(code, j)) {
            findings->push_back(path.string() + ":" +
                                std::to_string(line_of(code, i)) +
                                ": raw integer literal assigned to .tag");
            ++count;
        }
    }

    // Tag-slot arguments of matching calls.
    for (const TagCall& call : kTagCalls) {
        const std::string name = call.name;
        for (std::size_t i = code.find(name); i != std::string::npos;
             i = code.find(name, i + 1)) {
            if (i > 0 && (is_ident(code[i - 1]) || code[i - 1] == ':')) continue;
            std::size_t j = i + name.size();
            if (j < code.size() && is_ident(code[j])) continue;
            while (j < code.size() &&
                   std::isspace(static_cast<unsigned char>(code[j]))) {
                ++j;
            }
            if (j >= code.size() || code[j] != '(') continue;
            std::vector<std::string> args;
            std::size_t close = 0;
            if (!split_args(code, j, &args, &close)) continue;
            if (args.size() <= call.tag_arg) continue;
            const std::string tag_arg = trim(args[call.tag_arg]);
            if (is_int_literal(tag_arg, 0) &&
                tag_arg.find_first_not_of("+-0123456789'") == std::string::npos) {
                findings->push_back(path.string() + ":" +
                                    std::to_string(line_of(code, i)) +
                                    ": raw integer literal as tag argument of " +
                                    name + "()");
                ++count;
            }
        }
    }
    return count;
}

}  // namespace

int main(int argc, char** argv) {
    fs::path root = ".";
    if (argc > 1) root = argv[1];
    const std::vector<fs::path> scan_dirs = {
        root / "src", root / "tests", root / "bench", root / "examples",
        root / "tools"};

    std::vector<std::string> findings;
    int files = 0;
    for (const fs::path& dir : scan_dirs) {
        if (!fs::exists(dir)) continue;
        for (const auto& entry : fs::recursive_directory_iterator(dir)) {
            if (!entry.is_regular_file()) continue;
            const fs::path& p = entry.path();
            const std::string ext = p.extension().string();
            if (ext != ".cpp" && ext != ".hpp" && ext != ".h" && ext != ".cc") {
                continue;
            }
            if (p.filename() == "tags.hpp") continue;  // the one legal home
            ++files;
            scan_file(p, &findings);
        }
    }

    if (!findings.empty()) {
        for (const std::string& f : findings) std::cerr << f << "\n";
        std::cerr << "taglint: " << findings.size()
                  << " raw tag literal(s); use the constants/allocators in "
                     "src/comm/tags.hpp\n";
        return 1;
    }
    std::cout << "taglint: " << files << " files clean\n";
    return 0;
}
